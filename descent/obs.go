package descent

import "delaylb/obs"

// kindNames maps wire kind bytes to metric label values; slot 0 is the
// catch-all for unframed payloads (none are currently emitted).
var kindNames = [8]string{"unknown", "prices", "summary", "delta", "envelope", "resend", "refresh", "unused"}

// tallyKind is the slot a payload's tallies land in: the semantic kind,
// unwrapping envelope framing so a lossy run's traffic breaks down by
// what the messages carry, not by the recovery protocol's wrapper.
func tallyKind(payload []byte) int {
	if len(payload) == 0 {
		return 0
	}
	k := payload[0]
	if msgKind(k) == kindEnvelope && len(payload) > headerBytes {
		k = payload[headerBytes]
	}
	if int(k) >= len(kindNames) {
		return 0
	}
	return int(k)
}

// faultFields names FaultTotals' counter fields in declaration order;
// faultValues extracts them the same way. Keeping the two in one place
// makes the obs fold and the consistency test share a definition.
var faultFields = []string{
	"dropped", "duplicated", "reordered", "delayed", "corrupted", "false_priced",
	"dups_dropped", "stale_dropped", "invalid_dropped", "nacks_sent", "resends_served", "unrecovered",
	"crashes",
}

func faultValues(ft FaultTotals) []int64 {
	return []int64{
		ft.Dropped, ft.Duplicated, ft.Reordered, ft.Delayed, ft.Corrupted, ft.FalsePriced,
		ft.DupsDropped, ft.StaleDropped, ft.InvalidDropped, ft.NacksSent, ft.ResendsServed, ft.Unrecovered,
		int64(ft.Crashes),
	}
}

// planeObs is the plane's resolved instrument bundle, built once per
// Plane from Config.Obs. With a nil scope every field is nil and the
// per-round fold in observe degrades to nil-check no-ops — zero
// allocations, pinned by obs_alloc_test.go. Telemetry is one-way: the
// plane never reads any of these back, so instrumented runs keep the
// byte-identical determinism contract.
type planeObs struct {
	rounds    *obs.Counter
	moved     *obs.Counter
	stepped   *obs.Counter
	msgs      [8]*obs.Counter // descent_messages_total by kind
	bytes     [8]*obs.Counter // descent_bytes_total by kind
	faults    []*obs.Counter  // descent_faults_total by type, parallel to faultFields
	lostMass  *obs.Counter
	recovered *obs.Counter
	cost      *obs.Gauge
	relGap    *obs.Gauge
	step      *obs.Gauge
	nnz       *obs.Gauge
	movedHist *obs.Histogram
}

func newPlaneObs(sc *obs.Scope, mode Mode) planeObs {
	if !sc.Enabled() {
		return planeObs{}
	}
	md := mode.String()
	po := planeObs{
		rounds:    sc.Counter("descent_rounds_total", "mode", md),
		moved:     sc.Counter("descent_moved_requests_total", "mode", md),
		stepped:   sc.Counter("descent_stepped_rows_total", "mode", md),
		lostMass:  sc.Counter("descent_crash_lost_mass_total", "mode", md),
		recovered: sc.Counter("descent_crash_recovered_mass_total", "mode", md),
		cost:      sc.Gauge("descent_cost", "mode", md),
		relGap:    sc.Gauge("descent_rel_gap", "mode", md),
		step:      sc.Gauge("descent_step", "mode", md),
		nnz:       sc.Gauge("descent_nnz", "mode", md),
		movedHist: sc.Histogram("descent_round_moved", obs.ExpBuckets(1, 4, 12), "mode", md),
	}
	for k := 1; k < len(kindNames)-1; k++ {
		po.msgs[k] = sc.Counter("descent_messages_total", "kind", kindNames[k])
		po.bytes[k] = sc.Counter("descent_bytes_total", "kind", kindNames[k])
	}
	po.faults = make([]*obs.Counter, len(faultFields))
	for i, f := range faultFields {
		po.faults[i] = sc.Counter("descent_faults_total", "type", f)
	}
	return po
}

// enabled reports whether the bundle was resolved against a live scope.
func (po *planeObs) enabled() bool { return po.rounds != nil }

// observeRound folds one round's already-computed metrics into the
// scope. met.Faults (when set) holds this round's deltas by
// construction, so plain counter adds keep descent_faults_total equal
// to the run's FaultTotals — the consistency the satellite test pins.
func (po *planeObs) observeRound(met RoundMetrics, kindMsgs, kindBytes *[8]int64) {
	if !po.enabled() {
		return
	}
	po.rounds.Inc()
	po.moved.Add(int64(met.Moved))
	po.stepped.Add(int64(met.Stepped))
	po.cost.Set(met.Cost)
	po.relGap.Set(met.RelGap)
	po.step.Set(met.Step)
	po.nnz.Set(float64(met.NNZ))
	po.movedHist.Observe(met.Moved)
	for k := range kindMsgs {
		if kindMsgs[k] != 0 {
			po.msgs[k].Add(kindMsgs[k])
			po.bytes[k].Add(kindBytes[k])
		}
	}
	if met.Faults != nil {
		for i, v := range faultValues(*met.Faults) {
			if v != 0 {
				po.faults[i].Add(v)
			}
		}
		if met.Faults.LostMass != 0 {
			po.lostMass.Add(int64(met.Faults.LostMass))
		}
		if met.Faults.RecoveredMass != 0 {
			po.recovered.Add(int64(met.Faults.RecoveredMass))
		}
	}
}
