package descent

import (
	"testing"

	"delaylb/obs"
)

// The plane's telemetry contract: with no scope attached, the per-round
// obs calls Round makes — the bundle fold and the round span — must cost
// zero allocations. The plane's own per-round allocations (message
// buffers, shard scratch) are outside obs's budget; this isolates
// exactly the instrumentation the observability layer added to the
// round loop.
func TestDisabledPlaneObsZeroAlloc(t *testing.T) {
	var po planeObs // what newPlaneObs resolves from a nil scope
	var sc *obs.Scope
	ft := FaultTotals{Dropped: 3, Crashes: 1}
	met := RoundMetrics{Round: 7, Cost: 12.5, Moved: 2.5, Stepped: 40, NNZ: 90, Faults: &ft}
	var kindMsgs, kindBytes [8]int64
	kindMsgs[1], kindBytes[1] = 6, 384
	allocs := testing.AllocsPerRun(200, func() {
		span := sc.Start("descent.round")
		po.observeRound(met, &kindMsgs, &kindBytes)
		span.With(obs.Int("round", int64(met.Round))).
			With(obs.Float("cost", met.Cost)).
			With(obs.Float("moved", met.Moved)).
			With(obs.Int("bytes", met.Bytes)).
			End()
	})
	if allocs != 0 {
		t.Fatalf("disabled round instrumentation allocated %.1f per round, want 0", allocs)
	}
}
