package descent

import (
	"math"
	"testing"

	"delaylb/internal/model"
)

// TestJoinIntoEmptyMetro grows a plane into a metro that existed in the
// delay table but had no servers — the joining actor's shard was idle
// until the join.
func TestJoinIntoEmptyMetro(t *testing.T) {
	in, err := model.NewBlockInstance(
		[]float64{1, 1, 2},
		[]float64{120, 80, 40},
		[][]float64{{1, 10}, {10, 1}},
		[]int{0, 0, 0}, // metro 1 exists but is empty
	)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlane(in, Config{Shards: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(30); err != nil {
		t.Fatal(err)
	}
	before := p.Cost()
	// A fast empty server in the empty metro: mass should flow to it.
	if err := p.Join(4, 0, nil, nil, 1); err != nil {
		t.Fatal(err)
	}
	if p.M() != 4 {
		t.Fatalf("fleet is %d after join, want 4", p.M())
	}
	rep, err := p.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost >= before {
		t.Fatalf("cost %g did not improve on %g after a fast server joined", rep.Cost, before)
	}
	checkFeasible(t, p)
	newCol := int32(3)
	used := false
	alloc := p.Allocation()
	for i := range alloc.Idx {
		for _, j := range alloc.Idx[i] {
			if j == newCol {
				used = true
			}
		}
	}
	if !used {
		t.Fatal("no organization routed to the newly joined server")
	}
}

// TestLeaveOnlyLoadedActor removes the one organization carrying load;
// the remaining fleet must stay feasible (all-zero rows).
func TestLeaveOnlyLoadedActor(t *testing.T) {
	in, err := model.NewBlockInstance(
		[]float64{1, 1, 1, 1},
		[]float64{100, 0, 0, 0},
		[][]float64{{1, 5}, {5, 1}},
		[]int{0, 0, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlane(in, Config{Shards: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(20); err != nil {
		t.Fatal(err)
	}
	if p.Cost() <= 0 {
		t.Fatal("loaded plane reports zero cost")
	}
	if err := p.Leave(0); err != nil {
		t.Fatal(err)
	}
	if p.M() != 3 {
		t.Fatalf("fleet is %d after leave, want 3", p.M())
	}
	if _, err := p.Run(3); err != nil {
		t.Fatal(err)
	}
	if p.Cost() != 0 {
		t.Fatalf("empty fleet cost %g, want 0", p.Cost())
	}
	checkFeasible(t, p)
}

// TestMidRoundLeaveDropsInFlightDelta drives the three phases by hand,
// removes a server while its delta messages are still sitting in
// inboxes, and checks the plane recovers: the payloads addressed to the
// dead server are dropped with the rebuild, every surviving row stays
// row-stochastic, and the next full round runs clean.
func TestMidRoundLeaveDropsInFlightDelta(t *testing.T) {
	in := clusteredInstance(t, 40, 4, 7)
	p, err := NewPlane(in, Config{Shards: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(2); err != nil {
		t.Fatal(err)
	}

	// Run publish and step of the next round, then stop before apply:
	// the step phase's delta messages are now in flight.
	p.round++
	r := p.round
	p.par(func(a *actor) { a.publish(r) })
	p.tr.Flush()
	p.par(func(a *actor) { a.step(r) })
	p.tr.Flush()
	inflight := 0
	for _, a := range p.actors {
		a.inMu.Lock()
		inflight += len(a.inbox)
		a.inMu.Unlock()
	}
	if inflight == 0 {
		t.Fatal("no in-flight payloads mid-round; the scenario is too quiet to exercise the drop path")
	}

	// Remove a server that other organizations route to, so some of the
	// in-flight deltas reference it.
	leave := -1
	for i := 0; i < p.M() && leave < 0; i++ {
		row := p.actors[p.owner[i]].rows[int32(i)]
		for _, j := range row.idx {
			if int(j) != i {
				leave = int(j)
				break
			}
		}
	}
	if leave < 0 {
		t.Fatal("no cross-routing to disturb")
	}
	loadBefore := p.in.Load[leave]
	if err := p.Leave(leave); err != nil {
		t.Fatal(err)
	}
	_ = loadBefore

	// The rebuild must have dropped every in-flight payload.
	for _, a := range p.actors {
		a.inMu.Lock()
		n := len(a.inbox) + len(a.deferred)
		a.inMu.Unlock()
		if n != 0 {
			t.Fatalf("actor %d still holds %d stale payloads after the mid-round leave", a.id, n)
		}
	}
	checkFeasible(t, p)
	if _, err := p.Round(); err != nil {
		t.Fatalf("first round after mid-round leave: %v", err)
	}
	checkFeasible(t, p)
}

// TestUpdateLoadsRescalesRows doubles every load and checks rows scale
// with their relay fractions preserved.
func TestUpdateLoadsRescalesRows(t *testing.T) {
	in := clusteredInstance(t, 30, 3, 13)
	p, err := NewPlane(in, Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(25); err != nil {
		t.Fatal(err)
	}
	before := p.Allocation()
	loads := append([]float64(nil), p.in.Load...)
	for i := range loads {
		loads[i] *= 2
	}
	if err := p.UpdateLoads(loads); err != nil {
		t.Fatal(err)
	}
	after := p.Allocation()
	for i := range before.Idx {
		if len(before.Idx[i]) != len(after.Idx[i]) {
			t.Fatalf("row %d support changed on rescale", i)
		}
		for tt := range before.Idx[i] {
			if got, want := after.Val[i][tt], 2*before.Val[i][tt]; math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("row %d entry %d: %g, want %g", i, tt, got, want)
			}
		}
	}
	checkFeasible(t, p)
	if _, err := p.Run(10); err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, p)
}

// TestChurnedPlaneStillDeterministic reruns an identical churn script
// at two shard counts and compares the final allocation bits.
func TestChurnedPlaneStillDeterministic(t *testing.T) {
	script := func(shards int) []byte {
		in := clusteredInstance(t, 40, 4, 19)
		p, err := NewPlane(in, Config{Shards: shards, Seed: 19})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(10); err != nil {
			t.Fatal(err)
		}
		if err := p.Join(2.5, 60, nil, nil, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(10); err != nil {
			t.Fatal(err)
		}
		if err := p.Leave(5); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(10); err != nil {
			t.Fatal(err)
		}
		return renderState(p, nil)
	}
	base := script(1)
	for _, shards := range []int{2, 4} {
		if got := script(shards); string(got) != string(base) {
			t.Fatalf("churn script diverged at shards=%d", shards)
		}
	}
}
