package descent

// Membership and load churn. The plane treats every mutation the same
// way: assemble the global rows, project them through the exact same
// O(nnz + m) transforms the session tier uses (internal/dynamic), then
// reshard. Rebuilding from rows is what makes mid-round churn safe —
// columns, loads, subscriptions and price caches are derived state, and
// any in-flight payload (including a delta addressed to a server that
// just left) is dropped with the old inboxes rather than applied to a
// stale index space. Rows stay row-stochastic by construction: a
// leaving server's orphaned mass folds back onto each organization's
// home server, exactly like the centralized failover.
//
// Churn calls must come between rounds (or, in tests, between phases) —
// never concurrently with one.

import (
	"fmt"
	"math"

	"delaylb/internal/dynamic"
)

// UpdateLoads replaces the per-organization loads, rescaling each row
// to its new load so relay fractions survive moderate churn.
func (p *Plane) UpdateLoads(loads []float64) error {
	if len(loads) != p.in.M() {
		return fmt.Errorf("descent: UpdateLoads got %d loads, fleet has %d", len(loads), p.in.M())
	}
	for i, l := range loads {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("descent: UpdateLoads load[%d]=%v, must be non-negative and finite", i, l)
		}
	}
	next := dynamic.RescaleSparse(p.Allocation(), p.in.Load, loads)
	in := p.in.Clone()
	copy(in.Load, loads)
	return p.rebuild(in, next)
}

// Join adds a server/organization with the given speed and load. On
// block (metro) instances pass latTo = latFrom = nil and the metro in
// cluster; dense instances need the explicit latency rows. The newcomer
// starts by serving its own load, like every cold start.
func (p *Plane) Join(speed, load float64, latTo, latFrom []float64, cluster int) error {
	in, err := p.in.WithServer(speed, load, latTo, latFrom, cluster)
	if err != nil {
		return err
	}
	next := dynamic.ExpandSparse(p.Allocation(), load)
	return p.rebuild(in, next)
}

// Leave removes server/organization i. Every index above i shifts down
// by one; mass other organizations had routed to i folds back onto
// their home servers. In-flight messages addressed to i are dropped
// with the rebuild.
func (p *Plane) Leave(i int) error {
	if i < 0 || i >= p.in.M() {
		return fmt.Errorf("descent: Leave(%d) out of range, fleet has %d", i, p.in.M())
	}
	in, err := p.in.WithoutServer(i)
	if err != nil {
		return err
	}
	next := dynamic.CollapseSparse(p.Allocation(), i)
	return p.rebuild(in, next)
}

// CrashEvent describes one actor crash executed by the plane.
type CrashEvent struct {
	Round         int     `json:"round"`
	Victim        int     `json:"victim"`  // actor id at crash time
	Servers       int     `json:"servers"` // servers the victim owned
	LostMass      float64 `json:"lost_mass"`
	RecoveredMass float64 `json:"recovered_mass"`
	// Removed lists the victim's server indices as they were numbered
	// at crash time, ascending — what a driver tracking stable ids
	// needs to mirror the removals.
	Removed []int32 `json:"removed,omitempty"`
}

// Crash kills actor victim: every server — and with it every
// organization homed there — that the victim owns leaves the fleet
// through the Leave churn path, highest index first, and the survivors
// reshard. LostMass is the crashed organizations' own load, which
// exits the system with them; RecoveredMass is the surviving
// organizations' mass that was routed to the dying servers and is
// folded back onto their home servers by the failover instead of being
// lost. A victim owning the whole fleet cannot fail over and is an
// error; a victim owning nothing is a no-op.
func (p *Plane) Crash(victim int) (CrashEvent, error) {
	if victim < 0 || victim >= p.shards {
		return CrashEvent{}, fmt.Errorf("descent: Crash(%d) out of range, plane has %d actors", victim, p.shards)
	}
	own := append([]int32(nil), p.actors[victim].own...)
	ev := CrashEvent{Round: p.round, Victim: victim, Servers: len(own), Removed: own}
	if len(own) == 0 {
		return ev, nil
	}
	if len(own) == p.in.M() {
		return ev, fmt.Errorf("descent: Crash(%d) would remove every server — no survivor to fail over to", victim)
	}
	vic := make([]bool, p.in.M())
	for _, j := range own {
		vic[j] = true
		ev.LostMass += p.in.Load[j]
	}
	for i := 0; i < p.in.M(); i++ {
		if vic[i] {
			continue
		}
		row := p.actors[p.owner[i]].rows[int32(i)]
		for t, j := range row.idx {
			if vic[j] {
				ev.RecoveredMass += row.val[t]
			}
		}
	}
	// Highest index first, so the remaining owned indices stay valid
	// across the shift every Leave applies.
	for t := len(own) - 1; t >= 0; t-- {
		if err := p.Leave(int(own[t])); err != nil {
			return ev, err
		}
	}
	p.crashes++
	p.roundCrash = &ev
	if p.cfg.OnCrash != nil {
		p.cfg.OnCrash(ev)
	}
	return ev, nil
}
