package descent

// Membership and load churn. The plane treats every mutation the same
// way: assemble the global rows, project them through the exact same
// O(nnz + m) transforms the session tier uses (internal/dynamic), then
// reshard. Rebuilding from rows is what makes mid-round churn safe —
// columns, loads, subscriptions and price caches are derived state, and
// any in-flight payload (including a delta addressed to a server that
// just left) is dropped with the old inboxes rather than applied to a
// stale index space. Rows stay row-stochastic by construction: a
// leaving server's orphaned mass folds back onto each organization's
// home server, exactly like the centralized failover.
//
// Churn calls must come between rounds (or, in tests, between phases) —
// never concurrently with one.

import (
	"fmt"
	"math"

	"delaylb/internal/dynamic"
)

// UpdateLoads replaces the per-organization loads, rescaling each row
// to its new load so relay fractions survive moderate churn.
func (p *Plane) UpdateLoads(loads []float64) error {
	if len(loads) != p.in.M() {
		return fmt.Errorf("descent: UpdateLoads got %d loads, fleet has %d", len(loads), p.in.M())
	}
	for i, l := range loads {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("descent: UpdateLoads load[%d]=%v, must be non-negative and finite", i, l)
		}
	}
	next := dynamic.RescaleSparse(p.Allocation(), p.in.Load, loads)
	in := p.in.Clone()
	copy(in.Load, loads)
	return p.rebuild(in, next)
}

// Join adds a server/organization with the given speed and load. On
// block (metro) instances pass latTo = latFrom = nil and the metro in
// cluster; dense instances need the explicit latency rows. The newcomer
// starts by serving its own load, like every cold start.
func (p *Plane) Join(speed, load float64, latTo, latFrom []float64, cluster int) error {
	in, err := p.in.WithServer(speed, load, latTo, latFrom, cluster)
	if err != nil {
		return err
	}
	next := dynamic.ExpandSparse(p.Allocation(), load)
	return p.rebuild(in, next)
}

// Leave removes server/organization i. Every index above i shifts down
// by one; mass other organizations had routed to i folds back onto
// their home servers. In-flight messages addressed to i are dropped
// with the rebuild.
func (p *Plane) Leave(i int) error {
	if i < 0 || i >= p.in.M() {
		return fmt.Errorf("descent: Leave(%d) out of range, fleet has %d", i, p.in.M())
	}
	in, err := p.in.WithoutServer(i)
	if err != nil {
		return err
	}
	next := dynamic.CollapseSparse(p.Allocation(), i)
	return p.rebuild(in, next)
}
