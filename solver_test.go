package delaylb

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

func TestSolverRegistryHasAllBuiltins(t *testing.T) {
	names := SolverNames()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"mine", "hybrid", "proxy", "frankwolfe", "projgrad", "nash"} {
		if !have[want] {
			t.Errorf("built-in solver %q not registered (have %v)", want, names)
		}
	}
	for _, n := range names {
		s, ok := LookupSolver(n)
		if !ok || s.Name() != n {
			t.Errorf("LookupSolver(%q) inconsistent", n)
		}
	}
}

func TestRegisterSolverRejectsDuplicatesAndNil(t *testing.T) {
	if err := RegisterSolver(nil); err == nil {
		t.Error("nil solver accepted")
	}
	if err := RegisterSolver(mineSolver{name: "mine"}); err == nil {
		t.Error("duplicate registration accepted")
	}
}

// stubSolver returns the identity allocation — the simplest possible
// custom solver, used to prove third-party registration works end to end.
type stubSolver struct{}

func (stubSolver) Name() string { return "identity-stub" }

func (stubSolver) Solve(ctx context.Context, sys *System, opts SolveOptions) (*Result, error) {
	res := sys.Identity()
	res.Converged = true
	res.Reason = "stub"
	return res, ctx.Err()
}

func TestCustomSolverReachableByName(t *testing.T) {
	if _, ok := LookupSolver("identity-stub"); !ok {
		if err := RegisterSolver(stubSolver{}); err != nil {
			t.Fatal(err)
		}
	}
	sys := testSystem(t, 8, 21)
	res, err := sys.Optimize(WithSolver("identity-stub"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != "stub" || res.Cost != sys.Identity().Cost {
		t.Errorf("custom solver not dispatched: %+v", res)
	}
}

func TestOptimizeUnknownSolverListsRegistry(t *testing.T) {
	sys := testSystem(t, 5, 22)
	_, err := sys.Optimize(WithSolver("no-such-solver"))
	if err == nil {
		t.Fatal("unknown solver accepted")
	}
}

// Every solver must return promptly from an already-canceled context with
// a partial (feasible) result and the context's error.
func TestAllSolversHonourPreCanceledContext(t *testing.T) {
	sys := testSystem(t, 10, 23)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"mine", "hybrid", "proxy", "frankwolfe", "projgrad", "nash"} {
		res, err := sys.OptimizeContext(ctx, WithSolver(name))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if res == nil || len(res.Requests()) != 10 {
			t.Fatalf("%s: no partial result on cancellation", name)
		}
		if res.Converged || res.Reason != "canceled" {
			t.Errorf("%s: canceled result marked %q converged=%v", name, res.Reason, res.Converged)
		}
		// The partial result must still be a feasible allocation.
		for i, row := range res.Requests() {
			var sum float64
			for _, v := range row {
				sum += v
			}
			if load := sys.Identity().Loads[i]; math.Abs(sum-load) > 1e-6*math.Max(1, load) {
				t.Fatalf("%s: partial allocation infeasible for org %d", name, i)
			}
		}
	}
}

// A cancellation arriving mid-solve must interrupt the run between
// iterations: the solve returns well before it would finish, with the
// best-so-far allocation.
func TestOptimizeContextMidSolveCancellation(t *testing.T) {
	// Large instance + exact strategy: a full solve takes many seconds.
	sys, err := NewScenario(150).WithLoads(LoadExponential, 200).WithSeed(9).Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(30*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	res, err := sys.OptimizeContext(ctx, WithSolver("mine"), WithMaxIterations(10000))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (elapsed %v)", err, elapsed)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation not prompt: took %v", elapsed)
	}
	if res == nil || res.Converged || res.Reason != "canceled" {
		t.Fatalf("bad partial result: %+v", res)
	}
	// The partial work must already have improved over the identity start.
	if id := sys.Identity().Cost; res.Cost >= id {
		t.Logf("note: canceled before any improvement (cost %v vs identity %v)", res.Cost, id)
	}
}

func TestWithProgressObservesAndStopsEarly(t *testing.T) {
	sys := testSystem(t, 15, 24)
	var seen []float64
	res, err := sys.Optimize(WithProgress(func(iter int, cost float64) bool {
		seen = append(seen, cost)
		return len(seen) < 2 // stop after 2 iterations
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || res.Iterations != 2 {
		t.Errorf("progress callback saw %d iterations, result says %d; want 2", len(seen), res.Iterations)
	}
	if res.Reason != string("callback") {
		t.Errorf("stop reason %q, want callback", res.Reason)
	}
	// Costs must be non-increasing.
	if len(seen) == 2 && seen[1] > seen[0] {
		t.Errorf("cost rose between iterations: %v", seen)
	}
}

func TestProgressReachesQPAndNashSolvers(t *testing.T) {
	sys := testSystem(t, 10, 25)
	for _, name := range []string{"frankwolfe", "projgrad"} {
		calls := 0
		if _, err := sys.Optimize(WithSolver(name), WithProgress(func(int, float64) bool {
			calls++
			return true
		})); err != nil {
			t.Fatal(err)
		}
		if calls == 0 {
			t.Errorf("%s: progress callback never invoked", name)
		}
	}
	calls := 0
	if _, err := sys.NashEquilibrium(WithProgress(func(int, float64) bool {
		calls++
		return true
	})); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("nash: progress callback never invoked")
	}
}

func TestWarmStartRejectsWrongShape(t *testing.T) {
	sys := testSystem(t, 8, 28)
	for _, solver := range []string{"mine", "frankwolfe"} {
		if _, err := sys.Optimize(WithSolver(solver), WithWarmStart(make([][]float64, 3))); err == nil {
			t.Errorf("%s: warm start with wrong row count accepted", solver)
		}
		ragged := make([][]float64, 8)
		for i := range ragged {
			ragged[i] = make([]float64, 5)
		}
		if _, err := sys.Optimize(WithSolver(solver), WithWarmStart(ragged)); err == nil {
			t.Errorf("%s: ragged warm start accepted", solver)
		}
	}
}

func TestCallbackStopReasonAcrossSolvers(t *testing.T) {
	sys := testSystem(t, 12, 29)
	stopAfterOne := func(int, float64) bool { return false }
	for _, solver := range []string{"mine", "frankwolfe", "projgrad", "nash"} {
		res, err := sys.Optimize(WithSolver(solver), WithProgress(stopAfterOne))
		if err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		if res.Reason != "callback" {
			t.Errorf("%s: callback stop reported reason %q", solver, res.Reason)
		}
		if res.Converged {
			t.Errorf("%s: deliberate callback stop must not claim convergence", solver)
		}
	}
	// A progress-stopped NashEquilibrium returns the partial state
	// without the did-not-converge error.
	res, err := sys.NashEquilibrium(WithProgress(stopAfterOne))
	if err != nil {
		t.Fatalf("nash entry point errored on callback stop: %v", err)
	}
	if res == nil || res.Converged || res.Reason != "callback" {
		t.Errorf("nash callback stop mislabeled: %+v", res)
	}
}

func TestWarmStartOptionSkipsWork(t *testing.T) {
	sys := testSystem(t, 15, 26)
	opt, err := sys.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sys.Optimize(WithWarmStart(opt.Requests()))
	if err != nil {
		t.Fatal(err)
	}
	// Restarting at the optimum must terminate (pairwise stable) almost
	// immediately and not degrade the cost.
	if warm.Iterations > 2 {
		t.Errorf("warm restart at the optimum took %d iterations", warm.Iterations)
	}
	if warm.Cost > opt.Cost*(1+1e-9) {
		t.Errorf("warm restart degraded cost: %v vs %v", warm.Cost, opt.Cost)
	}
}

// Satellite regression: PriceOfAnarchy used to discard WithMaxIterations
// and WithTolerance, passing a zero Config to the measurement.
func TestPriceOfAnarchyHonoursOptions(t *testing.T) {
	sys := testSystem(t, 15, 27)
	def, err := sys.PriceOfAnarchy()
	if err != nil {
		t.Fatal(err)
	}
	oneSweep, err := sys.PriceOfAnarchy(WithMaxIterations(1))
	if err != nil {
		t.Fatal(err)
	}
	if def == oneSweep {
		t.Errorf("WithMaxIterations(1) ignored: PoA %v in both cases", def)
	}
	coarse, err := sys.PriceOfAnarchy(WithTolerance(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if def == coarse {
		t.Errorf("WithTolerance ignored: PoA %v in both cases", def)
	}
}

// customIdentitySolver is a minimal third-party solver: it "solves" by
// returning the identity allocation through the public NewResult
// constructor — the extension-point contract RegisterSolver documents.
type customIdentitySolver struct{}

func (customIdentitySolver) Name() string { return "custom-identity" }

func (customIdentitySolver) Solve(ctx context.Context, sys *System, opts SolveOptions) (*Result, error) {
	m := sys.M()
	req := make([][]float64, m)
	loads := sys.Identity().Loads
	for i := range req {
		req[i] = make([]float64, m)
		req[i][i] = loads[i]
	}
	res, err := NewResult(sys, req)
	if err != nil {
		return nil, err
	}
	res.Iterations = 1
	res.Converged = true
	res.Reason = "stable"
	return res, nil
}

// TestThirdPartySolverViaNewResult pins the RegisterSolver extension
// point across the lazy-Result refactor: a custom solver can construct
// an allocation-carrying Result, sessions adopt it, and the derived
// fields match what the built-in constructor computes.
func TestThirdPartySolverViaNewResult(t *testing.T) {
	if err := RegisterSolver(customIdentitySolver{}); err != nil {
		t.Fatal(err)
	}
	sys, err := NewScenario(12).WithSeed(4).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Optimize(WithSolver("custom-identity"))
	if err != nil {
		t.Fatal(err)
	}
	want := sys.Identity()
	if res.Cost != want.Cost {
		t.Fatalf("custom solver cost %v, want identity cost %v", res.Cost, want.Cost)
	}
	if res.M() != 12 || len(res.Requests()) != 12 || len(res.Fractions()) != 12 || len(res.OrgCosts) != 12 {
		t.Fatal("NewResult did not populate the derived views")
	}
	// Sessions must adopt the custom solver's allocation.
	sess := sys.NewSession(WithSolver("custom-identity"))
	if _, err := sess.Reoptimize(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := sess.Cost(); got != want.Cost {
		t.Fatalf("session did not adopt the custom result: cost %v, want %v", got, want.Cost)
	}
	// And the analysis entry points accept it.
	if eps := sys.EpsilonNash(res); eps < 0 {
		t.Fatalf("EpsilonNash on a custom result = %v", eps)
	}
	// Shape mismatches are rejected instead of corrupting state.
	if _, err := NewResult(sys, make([][]float64, 3)); err == nil {
		t.Fatal("NewResult accepted a wrong-shaped matrix")
	}
}
