package delaylb

import (
	"math"
	"testing"
)

// TestSolverInvariants is the registry-wide property test: every
// registered solver, on randomized small scenarios, must return a
// feasible plan — each organization's relay-fraction row non-negative
// and summing to 1 (a simplex point) — with a finite cost. Table-driven
// over SolverNames, so solvers registered later are covered
// automatically.
func TestSolverInvariants(t *testing.T) {
	scenarios := []Scenario{
		NewScenario(5).WithSeed(11),
		NewScenario(8).WithLoads(LoadUniform, 60).WithSeed(12),
		NewScenario(7).WithNetwork(NetHomogeneous).WithLoads(LoadPeak, 500).WithSeed(13),
		NewScenario(6).WithClusters(2).WithLatency(50).WithLoads(LoadZipf, 80).WithSeed(14),
		NewScenario(9).WithNetwork(NetEuclidean).WithLatency(80).WithSpeeds(SpeedConst, 2, 2).WithSeed(15),
	}
	for _, name := range SolverNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, sc := range scenarios {
				for _, sparse := range []bool{false, true} {
					sys, err := sc.Build()
					if err != nil {
						t.Fatal(err)
					}
					opts := []Option{WithSolver(name), WithSeed(sc.Seed), WithMaxIterations(200)}
					if sparse {
						opts = append(opts, WithSparse())
					}
					res, err := sys.OptimizeContext(t.Context(), opts...)
					if err != nil {
						t.Fatalf("%v sparse=%v: %v", sc, sparse, err)
					}
					assertFeasibleResult(t, sys, sc, res, sparse)
				}
			}
		})
	}
}

func assertFeasibleResult(t *testing.T, sys *System, sc Scenario, res *Result, sparse bool) {
	t.Helper()
	if math.IsNaN(res.Cost) || math.IsInf(res.Cost, 0) || res.Cost < 0 {
		t.Fatalf("%v sparse=%v: cost %v not finite and non-negative", sc, sparse, res.Cost)
	}
	const tol = 1e-6
	for i, row := range res.Fractions() {
		var sum float64
		for j, f := range row {
			if f < -tol || math.IsNaN(f) {
				t.Fatalf("%v sparse=%v: fraction[%d][%d] = %v", sc, sparse, i, j, f)
			}
			sum += f
		}
		if math.Abs(sum-1) > tol {
			t.Fatalf("%v sparse=%v: fraction row %d sums to %v, want 1", sc, sparse, i, sum)
		}
	}
	// The requests view must be consistent with the loads the instance
	// defines: row i carries organization i's entire load.
	loads := sys.in.Load
	for i, row := range res.Requests() {
		var sum float64
		for _, r := range row {
			sum += r
		}
		if math.Abs(sum-loads[i]) > tol*math.Max(1, loads[i]) {
			t.Fatalf("%v sparse=%v: requests row %d sums to %v, want %v", sc, sparse, i, sum, loads[i])
		}
	}
}
