package delaylb

import (
	"math/rand"

	"delaylb/internal/netmodel"
	"delaylb/internal/workload"
)

// This file exposes the instance generators used by the paper's
// evaluation, so downstream users can reproduce the experimental setups
// without reaching into internal packages. All generators are
// deterministic for a fixed seed.

// HomogeneousLatencies returns an m×m matrix with every off-diagonal
// latency equal to c — the paper's homogeneous network (c = 20 ms).
func HomogeneousLatencies(m int, c float64) [][]float64 {
	return netmodel.Homogeneous(m, c)
}

// PlanetLabLatencies returns a synthetic heterogeneous latency matrix
// with PlanetLab-like statistics: clustered geography, lognormal jitter
// and shortest-path completion (see internal/netmodel for the full
// construction and its calibration).
func PlanetLabLatencies(m int, seed int64) [][]float64 {
	return netmodel.PlanetLab(m, netmodel.DefaultPlanetLabConfig(), rand.New(rand.NewSource(seed)))
}

// EuclideanLatencies places m nodes uniformly in a square of side `side`
// milliseconds and uses Euclidean distances — a simple metric topology.
func EuclideanLatencies(m int, side float64, seed int64) [][]float64 {
	return netmodel.Euclidean(m, side, rand.New(rand.NewSource(seed)))
}

// UniformLoads draws m integer loads uniformly from [0, 2·avg].
func UniformLoads(m int, avg float64, seed int64) []float64 {
	return workload.UniformLoads(m, avg, rand.New(rand.NewSource(seed)))
}

// ExponentialLoads draws m integer loads from an exponential distribution
// with mean avg.
func ExponentialLoads(m int, avg float64, seed int64) []float64 {
	return workload.ExponentialLoads(m, avg, rand.New(rand.NewSource(seed)))
}

// PeakLoads puts `total` requests on one random server and zero
// elsewhere — the paper's peak distribution.
func PeakLoads(m int, total float64, seed int64) []float64 {
	return workload.PeakLoads(m, total, rand.New(rand.NewSource(seed)))
}

// ZipfLoads draws m loads following a Zipf popularity curve with the
// given average — a CDN-style extension beyond the paper's distributions.
func ZipfLoads(m int, avg float64, seed int64) []float64 {
	return workload.ZipfLoads(m, avg, 1.2, rand.New(rand.NewSource(seed)))
}

// UniformSpeeds draws m speeds uniformly from [lo, hi] (paper: [1, 5]).
func UniformSpeeds(m int, lo, hi float64, seed int64) []float64 {
	return workload.UniformSpeeds(m, lo, hi, rand.New(rand.NewSource(seed)))
}

// ConstSpeeds returns m copies of s.
func ConstSpeeds(m int, s float64) []float64 {
	return workload.ConstSpeeds(m, s)
}
