package delaylb

import (
	"math"
	"runtime"
	"testing"
	"time"
)

// TestScaleTierM2000 is the acceptance check of the large-m scale tier:
// an m = 2000 zipf/clustered scenario must solve through the sparse
// Frank–Wolfe path, deterministically (byte-identical cost across runs
// with the same seed), while the iterate stays sparse. Wall-clock and
// memory are logged, not asserted — CI and dev containers may have a
// single slow CPU, so timing assertions would only flake; the
// complexity guarantees live in the bit-identity tests of internal/qp
// and the persisted BENCH_scale.json trajectory.
func TestScaleTierM2000(t *testing.T) {
	if testing.Short() {
		t.Skip("scale tier test skipped in -short mode")
	}
	const m = 2000
	sc := NewScenario(m).WithClusters(8).WithLatency(100).WithLoads(LoadZipf, 100).WithSeed(7)

	run := func() (*Result, time.Duration) {
		sys, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		// 600 iterations land within ~1.5% of the converged cost (zipf
		// heavy hitters need many FW vertices, so the sublinear tail is
		// long) in about 2 s on a single CPU.
		res, err := sys.Optimize(
			WithSolver("frankwolfe"),
			WithSparse(),
			WithMaxIterations(600),
			WithTolerance(1e-6),
		)
		if err != nil {
			t.Fatal(err)
		}
		return res, time.Since(start)
	}

	var ms runtime.MemStats
	res1, el1 := run()
	runtime.ReadMemStats(&ms)
	res2, el2 := run()

	if res1.Cost != res2.Cost || res1.Iterations != res2.Iterations || res1.Gap != res2.Gap {
		t.Fatalf("scale run not deterministic: cost %v/%v iters %d/%d gap %v/%v",
			res1.Cost, res2.Cost, res1.Iterations, res2.Iterations, res1.Gap, res2.Gap)
	}
	if math.IsNaN(res1.Cost) || math.IsInf(res1.Cost, 0) || res1.Cost <= 0 {
		t.Fatalf("cost %v not finite positive", res1.Cost)
	}
	sys, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if id := sys.Identity().Cost; res1.Cost >= id {
		t.Fatalf("optimized cost %v not below identity cost %v", res1.Cost, id)
	}
	if res1.NNZ == 0 || res1.NNZ > m*(res1.Iterations+1) {
		t.Fatalf("NNZ %d outside (0, m·(iters+1)=%d]", res1.NNZ, m*(res1.Iterations+1))
	}
	if res1.NNZ >= m*m/4 {
		t.Fatalf("iterate lost sparsity: %d nonzeros of %d", res1.NNZ, m*m)
	}
	t.Logf("m=%d sparse frankwolfe: cost=%.6g gap=%.3g iters=%d nnz=%d (%.4f%% dense)",
		m, res1.Cost, res1.Gap, res1.Iterations, res1.NNZ, 100*float64(res1.NNZ)/float64(m*m))
	t.Logf("elapsed: run1 %v, run2 %v; heap after run1: %.1f MiB (timings logged, not asserted: 1-CPU containers)",
		el1.Round(time.Millisecond), el2.Round(time.Millisecond), float64(ms.HeapAlloc)/(1<<20))
}
