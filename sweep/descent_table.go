package sweep

// The distributed-plane evaluation table: the descent control plane
// racing the repository's centralized oracles on small clustered
// instances. Each cell solves one instance three ways — sparse
// Frank–Wolfe and the MinE proxy strategy centrally, then the
// cooperative plane with the better of the two as its target — and
// once more with selfish actors for a measured price of anarchy.
// The golden test pins the aggregate rows for a fixed seed; like every
// table in this package the rows are independent of the worker count.

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"delaylb"
	"delaylb/descent"
	"delaylb/internal/core"
	"delaylb/internal/qp"
	"delaylb/internal/stats"
	"delaylb/obs"
)

// DescentTableConfig drives the descent-vs-oracles table.
type DescentTableConfig struct {
	// Sizes are the network sizes; the table exists for small m, where
	// the centralized oracles are exact enough to referee.
	Sizes []int
	// Dists are the load distributions per size.
	Dists []delaylb.LoadKind
	// AvgLoad is the mean load of each distribution.
	AvgLoad float64
	// Clusters is the metro count of the clustered scenarios (also the
	// plane's default shard count).
	Clusters int
	// Rounds bounds the gradient rounds of each plane run. Cells that
	// never enter the 2% band report the full budget as their
	// rounds-to-band (a censored sample, not a sentinel).
	Rounds int
	// Participation is the per-row step probability (0: the plane's
	// default of full participation — fine at table scale).
	Participation float64
	// FWIters/FWTol bound the Frank–Wolfe oracle, MineIters the MinE
	// proxy oracle.
	FWIters   int
	FWTol     float64
	MineIters int
	// Repeats is the number of seeds per (size, dist) cell.
	Repeats int
	// Seed is the base seed; cell i derives its stream from
	// CellSeed(Seed, i).
	Seed int64
	// Workers bounds the worker pool (<= 0: all CPUs); results are
	// identical for every worker count.
	Workers int
	// Progress, if non-nil, receives (completed cells, total cells).
	Progress func(done, total int)
	// Stats, if non-nil, collects one wall-clock/alloc row per completed
	// cell (see Runner.Stats). Side channel only: never part of the
	// table's rows or any golden-compared output.
	Stats *obs.RuntimeStats
}

// DefaultDescentTableConfig returns the standing small-m grid.
func DefaultDescentTableConfig() DescentTableConfig {
	return DescentTableConfig{
		Sizes:    []int{30, 60, 120},
		Dists:    []delaylb.LoadKind{delaylb.LoadUniform, delaylb.LoadZipf},
		AvgLoad:  100,
		Clusters: 4,
		Rounds:   400,
		// Even at table scale, full participation lets concurrent rows
		// herd onto a metro's best-priced servers (one m=48 cell ends 13%
		// above the oracle); half participation converges faster and
		// inside the band on every cell.
		Participation: 0.5,
		FWIters:       600,
		FWTol:         1e-6,
		MineIters:     12,
		Repeats:       3,
		Seed:          1,
	}
}

// DescentRow is one aggregated row of the descent table.
type DescentRow struct {
	M    int              `json:"m"`
	Dist delaylb.LoadKind `json:"dist"`
	// Gap summarizes the cooperative plane's signed final relative gap
	// against the better centralized oracle (negative: the plane ended
	// below a budgeted oracle's cost).
	Gap stats.Summary `json:"gap"`
	// Rounds summarizes gradient rounds to the 2% band.
	Rounds stats.Summary `json:"rounds"`
	// PoA summarizes the selfish plane's fixed-point cost over the
	// oracle cost — the measured price of anarchy under gradient play.
	PoA stats.Summary `json:"poa"`
}

// descentCell is one point of the grid.
type descentCell struct {
	m    int
	dist delaylb.LoadKind
	rep  int
}

func (cfg DescentTableConfig) cells() []descentCell {
	var out []descentCell
	for _, m := range cfg.Sizes {
		for _, dist := range cfg.Dists {
			for rep := 0; rep < cfg.Repeats; rep++ {
				out = append(out, descentCell{m, dist, rep})
			}
		}
	}
	return out
}

// DescentTable runs the grid and aggregates per (size, dist).
func DescentTable(cfg DescentTableConfig) []DescentRow {
	rows, _ := DescentTableContext(context.Background(), cfg)
	return rows
}

// DescentTableContext is DescentTable with cancellation: on ctx
// cancellation it aggregates the completed cells and returns ctx.Err().
func DescentTableContext(ctx context.Context, cfg DescentTableConfig) ([]DescentRow, error) {
	type key struct {
		m    int
		dist delaylb.LoadKind
	}
	type sample struct {
		key    key
		gap    float64
		rounds float64
		poa    float64
	}
	cells := cfg.cells()
	run := Runner{Workers: cfg.Workers, Seed: cfg.Seed, Progress: cfg.Progress, Stats: cfg.Stats, StatsLabel: "descent"}
	results, done, err := RunCells(ctx, run, cells,
		func(ctx context.Context, i int, c descentCell, rng *rand.Rand) (sample, error) {
			s, cerr := cfg.runCell(ctx, c, rng)
			if cerr != nil {
				return sample{}, cerr
			}
			return sample{key: key{c.m, c.dist}, gap: s[0], rounds: s[1], poa: s[2]}, nil
		})
	samples := map[key][]sample{}
	for i, s := range results {
		if done[i] {
			samples[s.key] = append(samples[s.key], s)
		}
	}
	keys := make([]key, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].m != keys[b].m {
			return keys[a].m < keys[b].m
		}
		return keys[a].dist < keys[b].dist
	})
	rows := make([]DescentRow, 0, len(keys))
	for _, k := range keys {
		var gaps, rounds, poas []float64
		for _, s := range samples[k] {
			gaps = append(gaps, s.gap)
			rounds = append(rounds, s.rounds)
			poas = append(poas, s.poa)
		}
		rows = append(rows, DescentRow{
			M:      k.m,
			Dist:   k.dist,
			Gap:    stats.Summarize(gaps),
			Rounds: stats.Summarize(rounds),
			PoA:    stats.Summarize(poas),
		})
	}
	return rows, err
}

// runCell measures one instance: [gap, rounds-to-band, PoA]. The RNG
// draw order is part of the determinism contract — scenario seed, MinE
// seed, cooperative seed, selfish seed, in that order.
func (cfg DescentTableConfig) runCell(ctx context.Context, c descentCell, rng *rand.Rand) ([3]float64, error) {
	var out [3]float64
	scSeed, mineSeed, coopSeed, selfSeed := rng.Int63(), rng.Int63(), rng.Int63(), rng.Int63()
	sc := delaylb.NewScenario(c.m).
		WithClusters(cfg.Clusters).
		WithLoads(c.dist, cfg.AvgLoad).
		WithSeed(scSeed)
	in, err := sc.Instance()
	if err != nil {
		return out, err
	}

	// The referee: the better of the two centralized tiers.
	fw := qp.SolveFrankWolfeSparse(in, qp.Options{MaxIters: cfg.FWIters, Tol: cfg.FWTol, Ctx: ctx})
	st := core.NewIdentityState(in)
	core.RunState(st, core.Config{
		Strategy:      core.StrategyProxy,
		MaxIters:      cfg.MineIters,
		SparseColumns: true,
		Rng:           rand.New(rand.NewSource(mineSeed)),
		Ctx:           ctx,
	})
	oracle := math.Min(fw.Cost, st.Cost())
	if err := ctx.Err(); err != nil {
		return out, err
	}

	coop, err := descent.NewPlane(in, descent.Config{
		Seed:          coopSeed,
		Target:        oracle,
		Participation: cfg.Participation,
	})
	if err != nil {
		return out, err
	}
	crep, err := coop.Run(cfg.Rounds)
	if err != nil {
		return out, err
	}
	out[0] = crep.RelGap
	out[1] = float64(crep.RoundsToBand)
	if crep.RoundsToBand < 0 {
		out[1] = float64(cfg.Rounds) // censored at the budget
	}

	selfish, err := descent.NewPlane(in, descent.Config{
		Mode:          descent.Selfish,
		Seed:          selfSeed,
		Participation: cfg.Participation,
	})
	if err != nil {
		return out, err
	}
	srep, err := selfish.Run(cfg.Rounds)
	if err != nil {
		return out, err
	}
	out[2] = srep.Cost / oracle
	return out, ctx.Err()
}
