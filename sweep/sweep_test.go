package sweep

import (
	"strings"
	"testing"

	"delaylb"
)

func TestCellScenarioShapes(t *testing.T) {
	for _, net := range []delaylb.NetworkKind{delaylb.NetHomogeneous, delaylb.NetPlanetLab} {
		for _, sk := range []delaylb.SpeedKind{delaylb.SpeedConst, delaylb.SpeedUniform} {
			in, err := buildCell(30, net, sk, delaylb.LoadUniform, 50, 1)
			if err != nil {
				t.Fatalf("%s/%s: %v", net, sk, err)
			}
			if err := in.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", net, sk, err)
			}
			if in.M() != 30 {
				t.Fatalf("m = %d, want 30", in.M())
			}
		}
	}
}

func TestCellScenarioHomogeneousLatency(t *testing.T) {
	in, err := buildCell(10, delaylb.NetHomogeneous, delaylb.SpeedConst, delaylb.LoadUniform, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if in.LatAt(0, 1) != 20 {
		t.Errorf("homogeneous latency = %v, want 20", in.LatAt(0, 1))
	}
	if in.Speed[0] != 1 || in.Speed[9] != 1 {
		t.Errorf("const speeds = %v", in.Speed[:3])
	}
}

func TestCellScenarioRejectsBadKinds(t *testing.T) {
	if _, err := buildCell(5, delaylb.NetworkKind("x"), delaylb.SpeedConst, delaylb.LoadUniform, 1, 1); err == nil {
		t.Error("bad network kind accepted")
	}
	if _, err := buildCell(5, delaylb.NetHomogeneous, delaylb.SpeedConst, delaylb.LoadKind("x"), 1, 1); err == nil {
		t.Error("bad load kind accepted")
	}
	if _, err := buildCell(5, delaylb.NetHomogeneous, delaylb.SpeedKind("x"), delaylb.LoadUniform, 1, 1); err == nil {
		t.Error("bad speed kind accepted")
	}
}

func TestCellScenarioDeterministic(t *testing.T) {
	a, err := buildCell(20, delaylb.NetPlanetLab, delaylb.SpeedUniform, delaylb.LoadExponential, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildCell(20, delaylb.NetPlanetLab, delaylb.SpeedUniform, delaylb.LoadExponential, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Load {
		if a.Load[i] != b.Load[i] || a.Speed[i] != b.Speed[i] {
			t.Fatalf("same scenario built different instances at server %d", i)
		}
	}
}

func TestPaperLabels(t *testing.T) {
	if PaperNetLabel(delaylb.NetHomogeneous) != "c=20" {
		t.Error("homogeneous label")
	}
	if PaperNetLabel(delaylb.NetPlanetLab) != "PL" {
		t.Error("planetlab label")
	}
	if PaperSpeedLabel(delaylb.SpeedConst) != "const" {
		t.Error("const label")
	}
}

func TestSizeGroup(t *testing.T) {
	cases := map[int]string{20: "m<=50", 50: "m<=50", 100: "m=100", 300: "m=300"}
	for m, want := range cases {
		if got := SizeGroup(m); got != want {
			t.Errorf("SizeGroup(%d) = %q, want %q", m, got, want)
		}
	}
}

func TestFigure1StructureWrites(t *testing.T) {
	var sb strings.Builder
	if err := Figure1Structure(&sb, 4); err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) < 50 {
		t.Errorf("suspiciously short structure output:\n%s", sb.String())
	}
}

// A reduced Table I run must reproduce the paper's qualitative findings:
// convergence within a dozen iterations, and peak loads converging slower
// than uniform loads.
func TestConvergenceTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment: skipped in -short mode")
	}
	cfg := ConvergenceConfig{
		Sizes:     []int{20, 50},
		Dists:     []delaylb.LoadKind{delaylb.LoadUniform, delaylb.LoadPeak},
		AvgLoads:  []float64{50},
		PeakTotal: 100000,
		Networks:  []delaylb.NetworkKind{delaylb.NetHomogeneous, delaylb.NetPlanetLab},
		Tol:       0.02,
		Repeats:   2,
		Seed:      1,
		MaxIters:  100,
	}
	rows := ConvergenceTable(cfg)
	if len(rows) != 2 { // one group (m<=50) × two distributions
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	var uniform, peak ConvergenceRow
	for _, r := range rows {
		switch r.Dist {
		case delaylb.LoadUniform:
			uniform = r
		case delaylb.LoadPeak:
			peak = r
		}
	}
	if uniform.Summary.Max > 12 {
		t.Errorf("uniform loads took up to %v iterations, paper reports ≤ 3", uniform.Summary.Max)
	}
	if peak.Summary.Max > 20 {
		t.Errorf("peak loads took up to %v iterations, paper reports ≤ 6-8", peak.Summary.Max)
	}
	if peak.Summary.Avg < uniform.Summary.Avg {
		t.Errorf("peak (%v) should converge slower than uniform (%v)",
			peak.Summary.Avg, uniform.Summary.Avg)
	}
}

// Table II (0.1%) must need at least as many iterations as Table I (2%).
func TestTighterToleranceNeedsMoreIterations(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment: skipped in -short mode")
	}
	base := ConvergenceConfig{
		Sizes:    []int{30},
		Dists:    []delaylb.LoadKind{delaylb.LoadExponential},
		AvgLoads: []float64{50},
		Networks: []delaylb.NetworkKind{delaylb.NetPlanetLab},
		Repeats:  3,
		Seed:     2,
		MaxIters: 100,
	}
	loose := base
	loose.Tol = 0.02
	tight := base
	tight.Tol = 0.001
	looseRows := ConvergenceTable(loose)
	tightRows := ConvergenceTable(tight)
	if tightRows[0].Summary.Avg < looseRows[0].Summary.Avg {
		t.Errorf("0.1%% target took %v iters, 2%% took %v — tighter must not be faster",
			tightRows[0].Summary.Avg, looseRows[0].Summary.Avg)
	}
}

// Table III shape: PoA ≥ 1 everywhere, small overall, and (the paper's
// headline) larger for constant speeds on the homogeneous network at
// medium load than for uniform speeds on PlanetLab.
func TestSelfishnessTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment: skipped in -short mode")
	}
	cfg := SelfishnessConfig{
		Sizes:      []int{20, 30},
		SpeedKinds: []delaylb.SpeedKind{delaylb.SpeedConst, delaylb.SpeedUniform},
		LavBuckets: []LavBucket{
			{Label: "lav=50", Loads: []float64{50}},
			{Label: "lav>=200", Loads: []float64{200}},
		},
		Networks: []delaylb.NetworkKind{delaylb.NetHomogeneous, delaylb.NetPlanetLab},
		Repeats:  2,
		Seed:     3,
	}
	rows := SelfishnessTable(cfg)
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	get := func(sk delaylb.SpeedKind, lav string, net delaylb.NetworkKind) SelfishnessRow {
		for _, r := range rows {
			if r.Speeds == sk && r.LavLabel == lav && r.Network == net {
				return r
			}
		}
		t.Fatalf("row %v/%v/%v missing", sk, lav, net)
		return SelfishnessRow{}
	}
	for _, r := range rows {
		if r.Summary.Min < 1-1e-6 {
			t.Errorf("row %+v has ratio < 1", r)
		}
		if r.Summary.Max > 1.25 {
			t.Errorf("row %+v exceeds the paper's ≈1.15 ceiling by a wide margin", r)
		}
	}
	// The paper's highest cost: const speeds, homogeneous net, medium lav.
	hot := get(delaylb.SpeedConst, "lav=50", delaylb.NetHomogeneous)
	cold := get(delaylb.SpeedUniform, "lav>=200", delaylb.NetPlanetLab)
	if hot.Summary.Avg < cold.Summary.Avg {
		t.Errorf("const/c=20/lav=50 (%v) should cost more than uniform/PL/lav≥200 (%v)",
			hot.Summary.Avg, cold.Summary.Avg)
	}
}

// Figure 2 shape: cost decreases monotonically and the bulk of the
// improvement lands in the first few iterations (exponential decrease).
func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment: skipped in -short mode")
	}
	cfg := Figure2Config{
		Sizes:      []int{200},
		PeakTotal:  100000,
		Iterations: 15,
		Seed:       4,
		Strategy:   0, // exact is fine at this reduced size
	}
	series := Figure2(cfg)
	if len(series) != 1 {
		t.Fatalf("got %d series", len(series))
	}
	costs := series[0].Costs
	for k := 1; k < len(costs); k++ {
		if costs[k] > costs[k-1]*(1+1e-9) {
			t.Fatalf("cost increased at iteration %d", k)
		}
	}
	total := costs[0] - costs[len(costs)-1]
	first3 := costs[0] - costs[3]
	if total <= 0 {
		t.Fatal("no improvement at all")
	}
	if first3/total < 0.9 {
		t.Errorf("first 3 iterations captured only %.0f%% of the improvement, want ≥ 90%%",
			100*first3/total)
	}
}

// Table IV shape via the harness: flat below the knee, rising after, σ
// growing, ANOVA mostly accepting at light loads.
func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment: skipped in -short mode")
	}
	cfg := DefaultTable4Config()
	cfg.Probes = 100 // keep the test quick; cmd/tables uses 300
	res := Table4(cfg)
	if len(res.Rows) != len(cfg.ThroughputsKBps) {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	byTb := map[float64]Table4Row{}
	for _, r := range res.Rows {
		byTb[r.ThroughputKBps] = r
	}
	if mu := byTb[100].Mu; mu > 0.05 || mu < -0.05 {
		t.Errorf("μ(100 KB/s) = %v, want ≈0", mu)
	}
	if byTb[500].Mu < 0.05 {
		t.Errorf("μ(500 KB/s) = %v, want clearly positive", byTb[500].Mu)
	}
	if byTb[2000].Sigma < byTb[100].Sigma {
		t.Errorf("σ should grow with load: σ(2MB/s)=%v < σ(100KB/s)=%v",
			byTb[2000].Sigma, byTb[100].Sigma)
	}
	if res.ANOVAAcceptFrac < 0.8 {
		t.Errorf("ANOVA accepted for %.0f%% of pairs, want ≥ 80%%", 100*res.ANOVAAcceptFrac)
	}
}

// §VI-B ablation: cycle removal must not change the iteration counts.
func TestCycleAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment: skipped in -short mode")
	}
	res := CycleAblation([]int{20, 40}, 2, 5)
	if len(res.ItersWith) != len(res.ItersWithout) || len(res.ItersWith) == 0 {
		t.Fatal("mismatched ablation outputs")
	}
	// The paper found identical counts in all experiments; we tolerate a
	// 1-iteration wobble from float noise but flag systematic drift.
	for k := range res.ItersWith {
		d := res.ItersWith[k] - res.ItersWithout[k]
		if d < -1 || d > 1 {
			t.Errorf("run %d: %d iters with removal vs %d without",
				k, res.ItersWith[k], res.ItersWithout[k])
		}
	}
}
