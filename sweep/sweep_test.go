package sweep

import (
	"math/rand"
	"testing"

	"delaylb/internal/workload"
)

func TestBuildInstanceShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, net := range []NetworkKind{NetHomogeneous, NetPlanetLab} {
		for _, sk := range []SpeedKind{SpeedConst, SpeedUniform} {
			in := BuildInstance(30, net, sk, workload.KindUniform, 50, rng)
			if err := in.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", net, sk, err)
			}
			if in.M() != 30 {
				t.Fatalf("m = %d, want 30", in.M())
			}
		}
	}
}

func TestBuildInstanceHomogeneousLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := BuildInstance(10, NetHomogeneous, SpeedConst, workload.KindUniform, 50, rng)
	if in.Latency[0][1] != 20 {
		t.Errorf("homogeneous latency = %v, want 20", in.Latency[0][1])
	}
	if in.Speed[0] != 1 || in.Speed[9] != 1 {
		t.Errorf("const speeds = %v", in.Speed[:3])
	}
}

func TestBuildInstancePanicsOnBadKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, f := range []func(){
		func() { BuildInstance(5, NetworkKind("x"), SpeedConst, workload.KindUniform, 1, rng) },
		func() { BuildInstance(5, NetHomogeneous, SpeedKind("x"), workload.KindUniform, 1, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSizeGroup(t *testing.T) {
	cases := map[int]string{20: "m<=50", 50: "m<=50", 100: "m=100", 300: "m=300"}
	for m, want := range cases {
		if got := SizeGroup(m); got != want {
			t.Errorf("SizeGroup(%d) = %q, want %q", m, got, want)
		}
	}
}

// A reduced Table I run must reproduce the paper's qualitative findings:
// convergence within a dozen iterations, and peak loads converging slower
// than uniform loads.
func TestConvergenceTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment: skipped in -short mode")
	}
	cfg := ConvergenceConfig{
		Sizes:     []int{20, 50},
		Dists:     []workload.Kind{workload.KindUniform, workload.KindPeak},
		AvgLoads:  []float64{50},
		PeakTotal: 100000,
		Networks:  []NetworkKind{NetHomogeneous, NetPlanetLab},
		Tol:       0.02,
		Repeats:   2,
		Seed:      1,
		MaxIters:  100,
	}
	rows := ConvergenceTable(cfg)
	if len(rows) != 2 { // one group (m<=50) × two distributions
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	var uniform, peak ConvergenceRow
	for _, r := range rows {
		switch r.Dist {
		case workload.KindUniform:
			uniform = r
		case workload.KindPeak:
			peak = r
		}
	}
	if uniform.Summary.Max > 12 {
		t.Errorf("uniform loads took up to %v iterations, paper reports ≤ 3", uniform.Summary.Max)
	}
	if peak.Summary.Max > 20 {
		t.Errorf("peak loads took up to %v iterations, paper reports ≤ 6-8", peak.Summary.Max)
	}
	if peak.Summary.Avg < uniform.Summary.Avg {
		t.Errorf("peak (%v) should converge slower than uniform (%v)",
			peak.Summary.Avg, uniform.Summary.Avg)
	}
}

// Table II (0.1%) must need at least as many iterations as Table I (2%).
func TestTighterToleranceNeedsMoreIterations(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment: skipped in -short mode")
	}
	base := ConvergenceConfig{
		Sizes:    []int{30},
		Dists:    []workload.Kind{workload.KindExponential},
		AvgLoads: []float64{50},
		Networks: []NetworkKind{NetPlanetLab},
		Repeats:  3,
		Seed:     2,
		MaxIters: 100,
	}
	loose := base
	loose.Tol = 0.02
	tight := base
	tight.Tol = 0.001
	looseRows := ConvergenceTable(loose)
	tightRows := ConvergenceTable(tight)
	if tightRows[0].Summary.Avg < looseRows[0].Summary.Avg {
		t.Errorf("0.1%% target took %v iters, 2%% took %v — tighter must not be faster",
			tightRows[0].Summary.Avg, looseRows[0].Summary.Avg)
	}
}

// Table III shape: PoA ≥ 1 everywhere, small overall, and (the paper's
// headline) larger for constant speeds on the homogeneous network at
// medium load than for uniform speeds on PlanetLab.
func TestSelfishnessTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment: skipped in -short mode")
	}
	cfg := SelfishnessConfig{
		Sizes:      []int{20, 30},
		SpeedKinds: []SpeedKind{SpeedConst, SpeedUniform},
		LavBuckets: []LavBucket{
			{Label: "lav=50", Loads: []float64{50}},
			{Label: "lav>=200", Loads: []float64{200}},
		},
		Networks: []NetworkKind{NetHomogeneous, NetPlanetLab},
		Repeats:  2,
		Seed:     3,
	}
	rows := SelfishnessTable(cfg)
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	get := func(sk SpeedKind, lav string, net NetworkKind) SelfishnessRow {
		for _, r := range rows {
			if r.SpeedKind == sk && r.LavLabel == lav && r.Network == net {
				return r
			}
		}
		t.Fatalf("row %v/%v/%v missing", sk, lav, net)
		return SelfishnessRow{}
	}
	for _, r := range rows {
		if r.Summary.Min < 1-1e-6 {
			t.Errorf("row %+v has ratio < 1", r)
		}
		if r.Summary.Max > 1.25 {
			t.Errorf("row %+v exceeds the paper's ≈1.15 ceiling by a wide margin", r)
		}
	}
	// The paper's highest cost: const speeds, homogeneous net, medium lav.
	hot := get(SpeedConst, "lav=50", NetHomogeneous)
	cold := get(SpeedUniform, "lav>=200", NetPlanetLab)
	if hot.Summary.Avg < cold.Summary.Avg {
		t.Errorf("const/c=20/lav=50 (%v) should cost more than uniform/PL/lav≥200 (%v)",
			hot.Summary.Avg, cold.Summary.Avg)
	}
}

// Figure 2 shape: cost decreases monotonically and the bulk of the
// improvement lands in the first few iterations (exponential decrease).
func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment: skipped in -short mode")
	}
	cfg := Figure2Config{
		Sizes:      []int{200},
		PeakTotal:  100000,
		Iterations: 15,
		Seed:       4,
		Strategy:   0, // exact is fine at this reduced size
	}
	series := Figure2(cfg)
	if len(series) != 1 {
		t.Fatalf("got %d series", len(series))
	}
	costs := series[0].Costs
	for k := 1; k < len(costs); k++ {
		if costs[k] > costs[k-1]*(1+1e-9) {
			t.Fatalf("cost increased at iteration %d", k)
		}
	}
	total := costs[0] - costs[len(costs)-1]
	first3 := costs[0] - costs[3]
	if total <= 0 {
		t.Fatal("no improvement at all")
	}
	if first3/total < 0.9 {
		t.Errorf("first 3 iterations captured only %.0f%% of the improvement, want ≥ 90%%",
			100*first3/total)
	}
}

// Table IV shape via the harness: flat below the knee, rising after, σ
// growing, ANOVA mostly accepting at light loads.
func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment: skipped in -short mode")
	}
	cfg := DefaultTable4Config()
	cfg.Probes = 100 // keep the test quick; cmd/tables uses 300
	res := Table4(cfg)
	if len(res.Rows) != len(cfg.ThroughputsKBps) {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	byTb := map[float64]Table4Row{}
	for _, r := range res.Rows {
		byTb[r.ThroughputKBps] = r
	}
	if mu := byTb[100].Mu; mu > 0.05 || mu < -0.05 {
		t.Errorf("μ(100 KB/s) = %v, want ≈0", mu)
	}
	if byTb[500].Mu < 0.05 {
		t.Errorf("μ(500 KB/s) = %v, want clearly positive", byTb[500].Mu)
	}
	if byTb[2000].Sigma < byTb[100].Sigma {
		t.Errorf("σ should grow with load: σ(2MB/s)=%v < σ(100KB/s)=%v",
			byTb[2000].Sigma, byTb[100].Sigma)
	}
	if res.ANOVAAcceptFrac < 0.8 {
		t.Errorf("ANOVA accepted for %.0f%% of pairs, want ≥ 80%%", 100*res.ANOVAAcceptFrac)
	}
}

// §VI-B ablation: cycle removal must not change the iteration counts.
func TestCycleAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment: skipped in -short mode")
	}
	res := CycleAblation([]int{20, 40}, 2, 5)
	if len(res.ItersWith) != len(res.ItersWithout) || len(res.ItersWith) == 0 {
		t.Fatal("mismatched ablation outputs")
	}
	// The paper found identical counts in all experiments; we tolerate a
	// 1-iteration wobble from float noise but flag systematic drift.
	for k := range res.ItersWith {
		d := res.ItersWith[k] - res.ItersWithout[k]
		if d < -1 || d > 1 {
			t.Errorf("run %d: %d iters with removal vs %d without",
				k, res.ItersWith[k], res.ItersWithout[k])
		}
	}
}
