package sweep

// The concurrent experiment engine. Every table and figure of the
// evaluation is a list of independent experiment cells (network × speed
// family × load distribution × size × repetition); RunCells fans a cell
// list out over a bounded worker pool and returns the per-cell results
// in cell order, so aggregation downstream is oblivious to how many
// workers ran and in which order cells finished.
//
// Determinism is the load-bearing property: cell i draws every random
// choice from a private RNG seeded by CellSeed(base, i), never from a
// stream shared across cells. The serial run (Workers = 1) and any
// parallel run therefore produce byte-identical aggregates — the golden
// tests in golden_test.go pin this against the paper's numbers.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"delaylb/obs"
)

// Runner configures the concurrent experiment engine shared by every
// table and figure of the evaluation. The zero value runs on all CPUs
// with base seed 0 and no progress reporting.
type Runner struct {
	// Workers bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	// The results do not depend on it.
	Workers int
	// Seed is the base seed; cell i uses CellSeed(Seed, i).
	Seed int64
	// Progress, if non-nil, is called after each completed cell with the
	// number of completed cells and the total. Calls are serialized, but
	// may come from worker goroutines.
	Progress func(done, total int)
	// Stats, if non-nil, receives one RuntimeRow per completed cell —
	// wall-clock and an approximate TotalAlloc delta (global under
	// concurrent workers; see obs.RuntimeRow.AllocBytes). Rows land in
	// cell order after the run, labeled "<StatsLabel>/cell<i>". Purely a
	// side channel: results are identical with or without it, and the
	// rows never enter a golden-compared output (cmd/tables routes them
	// to -statsout only).
	Stats *obs.RuntimeStats
	// StatsLabel prefixes the Stats row labels (e.g. "table1").
	StatsLabel string
}

func (r Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// CellSeed derives the private RNG seed of experiment cell i from the
// base seed with a splitmix64 finalizer. Neighboring (base, i) pairs map
// to statistically independent seeds, so cells never share randomness
// and a sweep's results are a pure function of (base seed, cell list) —
// independent of worker count and completion order.
func CellSeed(base int64, i int) int64 {
	z := uint64(base) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// RunCells runs fn over every cell on r's worker pool and returns the
// results in cell order. fn receives the cell's index, the cell, and a
// freshly seeded private RNG (CellSeed(r.Seed, index)); it must not
// share mutable state across calls.
//
// Cancellation: when ctx is canceled, no new cells are started, in-
// flight cells are left to finish (fn also receives ctx and may return
// early), and RunCells returns ctx.Err() together with the rows
// completed so far. done[i] reports whether cell i ran to completion
// without error — on a clean run every entry is true. A fn error is
// recorded for its cell (done[i] = false), does not stop other cells,
// and the lowest-index error is returned.
func RunCells[C, R any](ctx context.Context, r Runner, cells []C, fn func(ctx context.Context, index int, cell C, rng *rand.Rand) (R, error)) (results []R, done []bool, err error) {
	n := len(cells)
	results = make([]R, n)
	done = make([]bool, n)
	errs := make([]error, n)
	if n == 0 {
		return results, done, ctx.Err()
	}

	// Per-cell runtime rows are staged by index and appended in cell
	// order after the run, so a -statsout file is ordered the same for
	// every worker count even though completion order is not.
	var cellStats []obs.RuntimeRow
	if r.Stats != nil {
		cellStats = make([]obs.RuntimeRow, n)
	}

	next := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards completed + Progress calls
	completed := 0
	for w := 0; w < r.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				var start time.Time
				var before runtime.MemStats
				if cellStats != nil {
					runtime.ReadMemStats(&before)
					start = time.Now()
				}
				rng := rand.New(rand.NewSource(CellSeed(r.Seed, i)))
				v, ferr := fn(ctx, i, cells[i], rng)
				results[i], errs[i] = v, ferr
				done[i] = ferr == nil
				if cellStats != nil {
					elapsed := time.Since(start)
					var after runtime.MemStats
					runtime.ReadMemStats(&after)
					cellStats[i] = obs.RuntimeRow{
						Label:      fmt.Sprintf("%s/cell%d", r.StatsLabel, i),
						Elapsed:    elapsed,
						AllocBytes: after.TotalAlloc - before.TotalAlloc,
					}
				}
				mu.Lock()
				completed++
				if r.Progress != nil {
					r.Progress(completed, n)
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	for i := range cellStats {
		if done[i] {
			r.Stats.Add(cellStats[i])
		}
	}

	if cerr := ctx.Err(); cerr != nil {
		return results, done, cerr
	}
	for _, e := range errs {
		if e != nil {
			return results, done, e
		}
	}
	return results, done, nil
}
