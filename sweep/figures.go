package sweep

import (
	"context"
	"math/rand"

	"delaylb"
	"delaylb/internal/core"
	"delaylb/internal/netmodel"
	"delaylb/internal/netsim"
	"delaylb/internal/stats"
	"delaylb/obs"
)

// Figure2Config drives the large-network convergence experiment: peak
// initial load on a heterogeneous network, total processing time per
// iteration of the distributed algorithm.
type Figure2Config struct {
	// Sizes are the network sizes; the paper plots 500…5000.
	Sizes []int
	// PeakTotal is the load of the single loaded server (paper: 100 000).
	PeakTotal float64
	// Iterations is how many iterations to record (paper plots 20).
	Iterations int
	// Seed is the base RNG seed (one cell per size).
	Seed int64
	// Strategy defaults to the O(m log m)-per-step proxy, which is what
	// makes the 5000-server runs tractable.
	Strategy core.Strategy
	// Workers bounds the worker pool (<= 0: all CPUs).
	Workers int
	// Progress, if non-nil, receives (completed cells, total cells).
	Progress func(done, total int)
	// Stats, if non-nil, collects one wall-clock/alloc row per completed
	// cell (see Runner.Stats). Side channel only: never part of the
	// table's rows or any golden-compared output.
	Stats *obs.RuntimeStats
}

// DefaultFigure2Config returns a laptop-scale configuration (full 5000-
// server runs via cmd/tables -full).
func DefaultFigure2Config() Figure2Config {
	return Figure2Config{
		Sizes:      []int{500, 1000},
		PeakTotal:  100000,
		Iterations: 20,
		Seed:       1,
		Strategy:   core.StrategyProxy,
	}
}

// Figure2Series is one curve of Figure 2: ΣC_i after each iteration
// (index 0 = initial state).
type Figure2Series struct {
	M     int
	Costs []float64
}

// Figure2 reproduces the convergence curves: the total processing time
// decreases exponentially over the first dozen iterations even on
// networks of thousands of servers. One cell per size, run concurrently.
func Figure2(cfg Figure2Config) []Figure2Series {
	out, _ := Figure2Context(context.Background(), cfg)
	return out
}

// Figure2Context is Figure2 with cancellation; on ctx cancellation it
// returns the completed curves (in size order) and ctx.Err().
func Figure2Context(ctx context.Context, cfg Figure2Config) ([]Figure2Series, error) {
	run := Runner{Workers: cfg.Workers, Seed: cfg.Seed, Progress: cfg.Progress, Stats: cfg.Stats, StatsLabel: "figure2"}
	results, done, err := RunCells(ctx, run, cfg.Sizes,
		func(ctx context.Context, i int, m int, rng *rand.Rand) (Figure2Series, error) {
			in, berr := buildCell(m, delaylb.NetPlanetLab, delaylb.SpeedUniform, delaylb.LoadPeak, cfg.PeakTotal, rng.Int63())
			if berr != nil {
				return Figure2Series{}, berr
			}
			_, tr := core.Run(in, core.Config{
				Strategy: cfg.Strategy,
				MaxIters: cfg.Iterations,
				Rng:      rand.New(rand.NewSource(rng.Int63())),
				Ctx:      ctx,
			})
			if cerr := ctx.Err(); cerr != nil {
				return Figure2Series{}, cerr
			}
			return Figure2Series{M: m, Costs: tr.Costs}, nil
		})
	out := make([]Figure2Series, 0, len(results))
	for i, s := range results {
		if done[i] {
			out = append(out, s)
		}
	}
	return out, err
}

// Table4Config drives the RTT-vs-background-load experiment of the
// paper's Appendix.
type Table4Config struct {
	// ThroughputsKBps are the per-flow background levels; the paper uses
	// 10, 20, 50, 100, 200, 500, 1000, 2000, 5000 KB/s (Table IV labels
	// them 10 KB/s … 5 MB/s).
	ThroughputsKBps []float64
	// Probes per pair and level (paper: 300).
	Probes int
	// TrimFrac of the largest deviations is dropped (paper: 5%).
	TrimFrac float64
	// Seed is the RNG seed.
	Seed int64
	// ANOVALevels are the light-load levels over which the per-pair
	// ANOVA is run (the paper tests dependence below each threshold).
	ANOVALevels []float64
}

// DefaultTable4Config mirrors the paper's Appendix setup.
func DefaultTable4Config() Table4Config {
	return Table4Config{
		ThroughputsKBps: []float64{10, 20, 50, 100, 200, 500, 1000, 2000, 5000},
		Probes:          300,
		TrimFrac:        0.05,
		Seed:            1,
		ANOVALevels:     []float64{10, 20, 50},
	}
}

// Table4Row is one row of Table IV: the mean and standard deviation of
// the relative RTT deviation at one background-throughput level.
type Table4Row struct {
	ThroughputKBps float64
	Mu             float64
	Sigma          float64
}

// Table4Result bundles the rows with the ANOVA acceptance fraction.
type Table4Result struct {
	Rows []Table4Row
	// ANOVAAcceptFrac is the fraction of pairs for which the one-way
	// ANOVA over the light-load levels does not reject "RTT independent
	// of background throughput" at the 5% level (paper: >90% for
	// tb ≤ 50 KB/s).
	ANOVAAcceptFrac float64
}

// Table4 reproduces the Appendix experiment on the flow-level simulator:
// 60 servers, 5 background flows each, 300 RTT samples per pair, relative
// deviation against the 10 KB/s baseline with 5% trimming. The simulator
// is a single stateful sequential machine (each probe sees the queues the
// previous one left behind), so this experiment runs serially by design.
func Table4(cfg Table4Config) Table4Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	simCfg := netsim.DefaultConfig()
	lat := netmodel.PlanetLab(simCfg.Servers, netmodel.DefaultPlanetLabConfig(), rng)
	// One-way delays with a 10 ms floor (distinct sites; RTT ≥ 20 ms).
	for i := range lat {
		for j := range lat {
			if i == j {
				continue
			}
			lat[i][j] /= 2
			if lat[i][j] < 10 {
				lat[i][j] = 10
			}
		}
	}
	sim := netsim.New(simCfg, lat, rng)
	pairs := sim.Pairs()

	baselineTb := cfg.ThroughputsKBps[0]
	sim.SetBackgroundThroughput(baselineTb)
	baseline := make([]float64, len(pairs))
	for k, p := range pairs {
		baseline[k] = sim.AverageRTT(p[0], p[1], cfg.Probes)
	}

	res := Table4Result{}
	for _, tb := range cfg.ThroughputsKBps {
		sim.SetBackgroundThroughput(tb)
		devs := make([]float64, len(pairs))
		for k, p := range pairs {
			devs[k] = (sim.AverageRTT(p[0], p[1], cfg.Probes) - baseline[k]) / baseline[k]
		}
		trimmed := stats.TrimLargest(devs, cfg.TrimFrac)
		res.Rows = append(res.Rows, Table4Row{
			ThroughputKBps: tb,
			Mu:             stats.Mean(trimmed),
			Sigma:          stats.StdDev(trimmed),
		})
	}

	// Per-pair ANOVA over the light-load levels.
	accepted := 0
	for _, p := range pairs {
		groups := make([][]float64, len(cfg.ANOVALevels))
		for li, tb := range cfg.ANOVALevels {
			sim.SetBackgroundThroughput(tb)
			groups[li] = sim.MeasureRTT(p[0], p[1], cfg.Probes/5)
		}
		if r, err := stats.OneWayANOVA(groups); err == nil && r.P > 0.05 {
			accepted++
		}
	}
	res.ANOVAAcceptFrac = float64(accepted) / float64(len(pairs))
	return res
}

// CycleAblationResult compares convergence with and without the
// negative-cycle removal of Appendix A (§VI-B: "The number of iterations
// for two versions of the algorithm were exactly the same in all 6000
// experiments").
type CycleAblationResult struct {
	ItersWithout []int
	ItersWith    []int
	Identical    bool
}

// CycleAblation repeats a Table I-style measurement with cycle removal
// disabled and enabled (every 2 iterations) on identical instances.
// The (size × repetition) cells run concurrently on all CPUs.
func CycleAblation(sizes []int, repeats int, seed int64) CycleAblationResult {
	type cell struct{ m, rep int }
	type pair struct{ without, with int }
	var cells []cell
	for _, m := range sizes {
		for rep := 0; rep < repeats; rep++ {
			cells = append(cells, cell{m, rep})
		}
	}
	results, done, err := RunCells(context.Background(), Runner{Seed: seed}, cells,
		func(ctx context.Context, i int, c cell, rng *rand.Rand) (pair, error) {
			in, err := buildCell(c.m, delaylb.NetPlanetLab, delaylb.SpeedUniform, delaylb.LoadExponential, 50, rng.Int63())
			if err != nil {
				return pair{}, err
			}
			algSeed := rng.Int63()
			cfgBase := ConvergenceConfig{Tol: 0.02, MaxIters: 100}
			without, err := itersToTarget(ctx, in, cfgBase, algSeed)
			if err != nil {
				return pair{}, err
			}
			cfgCycles := cfgBase
			cfgCycles.RemoveCyclesEvery = 2
			with, err := itersToTarget(ctx, in, cfgCycles, algSeed)
			if err != nil {
				return pair{}, err
			}
			return pair{without, with}, nil
		})
	if err != nil {
		panic(err) // the fixed §VI-A families always validate
	}
	res := CycleAblationResult{Identical: true}
	for i, p := range results {
		if !done[i] {
			continue
		}
		res.ItersWithout = append(res.ItersWithout, p.without)
		res.ItersWith = append(res.ItersWith, p.with)
		if p.without != p.with {
			res.Identical = false
		}
	}
	return res
}
