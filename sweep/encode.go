package sweep

// Persistence for sweep results: a Report collects the order-stable
// aggregate rows of whatever tables and figures a run produced and
// writes them as one JSON document or as sectioned CSV. cmd/tables
// -out x.json / x.csv is a thin wrapper over these methods.

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"delaylb/internal/stats"
)

// Report bundles the rows of every table and figure a sweep run
// produced. Nil/empty sections were not run. Because every producer is
// order-stable and seed-deterministic, two reports from the same
// (seed, configuration) are byte-identical regardless of worker count.
type Report struct {
	// Seed is the base seed the run used; Workers the pool bound
	// (0 = all CPUs). Recorded so a report is self-describing.
	// Wall-clock deliberately does NOT appear here: a report's bytes are
	// a pure function of (seed, configuration). Machine-dependent
	// measurements travel in obs.RuntimeStats side structs instead
	// (cmd/tables -statsout).
	Seed    int64 `json:"seed"`
	Workers int   `json:"workers"`

	Table1  []ConvergenceRow `json:"table1,omitempty"`
	Table2  []ConvergenceRow `json:"table2,omitempty"`
	Table3  []SelfishnessRow `json:"table3,omitempty"`
	Table4  *Table4Result    `json:"table4,omitempty"`
	Figure2 []Figure2Series  `json:"figure2,omitempty"`
	Descent []DescentRow     `json:"descent,omitempty"`
	Faults  []FaultsRow      `json:"faults,omitempty"`
}

// WriteJSON writes the report as one indented JSON document.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false) // keep "m<=50" group labels readable
	return enc.Encode(r)
}

// WriteCSV writes the report as sectioned CSV: every record starts with
// a section tag ("table1", "figure2", …), so the sections concatenate
// into one file that splits cleanly on the first column.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	write := func(rec ...string) {
		cw.Write(rec)
	}
	write("section", "key1", "key2", "key3", "avg", "max", "min", "std", "n")
	conv := func(section string, rows []ConvergenceRow) {
		for _, row := range rows {
			write(append([]string{section, row.Group, string(row.Dist), ""}, summaryFields(row.Summary)...)...)
		}
	}
	conv("table1", r.Table1)
	conv("table2", r.Table2)
	for _, row := range r.Table3 {
		write(append([]string{"table3", string(row.Speeds), row.LavLabel, PaperNetLabel(row.Network)}, summaryFields(row.Summary)...)...)
	}
	if r.Table4 != nil {
		for _, row := range r.Table4.Rows {
			write("table4", ftoa(row.ThroughputKBps), "", "", ftoa(row.Mu), "", "", ftoa(row.Sigma), "")
		}
		write("table4-anova", "", "", "", ftoa(r.Table4.ANOVAAcceptFrac), "", "", "", "")
	}
	for _, s := range r.Figure2 {
		for it, c := range s.Costs {
			write("figure2", strconv.Itoa(s.M), strconv.Itoa(it), "", ftoa(c), "", "", "", "")
		}
	}
	for _, row := range r.Descent {
		write(append([]string{"descent-gap", strconv.Itoa(row.M), string(row.Dist), ""}, summaryFields(row.Gap)...)...)
		write(append([]string{"descent-rounds", strconv.Itoa(row.M), string(row.Dist), ""}, summaryFields(row.Rounds)...)...)
		write(append([]string{"descent-poa", strconv.Itoa(row.M), string(row.Dist), ""}, summaryFields(row.PoA)...)...)
	}
	for _, row := range r.Faults {
		write(append([]string{"faults-gap", row.Fault, "", ""}, summaryFields(row.Gap)...)...)
		write(append([]string{"faults-rounds", row.Fault, "", ""}, summaryFields(row.Rounds)...)...)
		write(append([]string{"faults-lost", row.Fault, "", ""}, summaryFields(row.LostMass)...)...)
		write(append([]string{"faults-recovered", row.Fault, "", ""}, summaryFields(row.RecoveredMass)...)...)
	}
	cw.Flush()
	return cw.Error()
}

func summaryFields(s stats.Summary) []string {
	return []string{ftoa(s.Avg), ftoa(s.Max), ftoa(s.Min), ftoa(s.Std), strconv.Itoa(s.N)}
}

func ftoa(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// WriteNamed writes the report in the format implied by the file
// extension of name (".json" or ".csv").
func (r *Report) WriteNamed(w io.Writer, name string) error {
	switch {
	case len(name) > 4 && name[len(name)-4:] == ".csv":
		return r.WriteCSV(w)
	case len(name) > 5 && name[len(name)-5:] == ".json":
		return r.WriteJSON(w)
	default:
		return fmt.Errorf("sweep: cannot infer report format from %q (want .json or .csv)", name)
	}
}
