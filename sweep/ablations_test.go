package sweep

import "testing"

func TestLatencyEstimationAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation experiment: skipped in -short mode")
	}
	res := LatencyEstimationAblation(25, 200, 1)
	if res.MedianRelErr <= 0 || res.MedianRelErr > 0.5 {
		t.Errorf("median embedding error %v outside plausible range", res.MedianRelErr)
	}
	if res.EstPlanCost < res.TrueOptCost*(1-1e-6) {
		t.Errorf("plan under estimated latencies (%v) beats the true optimum (%v)",
			res.EstPlanCost, res.TrueOptCost)
	}
	// Optimizing over a decent embedding should cost only a modest
	// premium under the true latencies.
	if res.Penalty > 0.25 {
		t.Errorf("estimation penalty %.1f%%, want ≤ 25%%", 100*res.Penalty)
	}
}

func TestDynamicTrackingAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation experiment: skipped in -short mode")
	}
	stats, sum := DynamicTrackingAblation(15, 4, 0.15, 2)
	if len(stats) != 4 {
		t.Fatalf("got %d epochs", len(stats))
	}
	if sum.AvgWarmIters > sum.AvgColdIters+0.51 {
		t.Errorf("warm %.2f iters vs cold %.2f — tracking advantage lost",
			sum.AvgWarmIters, sum.AvgColdIters)
	}
	if sum.StalenessAvg < 0 {
		t.Errorf("negative staleness %v", sum.StalenessAvg)
	}
}
