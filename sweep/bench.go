package sweep

// The scale-tier benchmark harness. Tables I–IV pin the paper's
// numbers; this file pins the repository's own performance trajectory:
// it runs the large-m grid (zipf loads on a clustered metro network —
// the workload the sparse solver paths exist for), records
// cost/iterations/nonzeros/time-per-iteration/allocations per cell, and
// persists everything as one JSON document (BENCH_scale.json at the
// repository root) so regressions show up as diffs rather than
// anecdotes.
//
// Costs, iteration counts and nonzero counts are deterministic for a
// fixed seed — two reports from the same configuration agree on them
// byte for byte. Timings and allocation counts are environment facts,
// recorded for the trajectory but excluded from any determinism
// comparison (bench_test.go pins exactly this split).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"delaylb"
	"delaylb/descent"
	"delaylb/internal/convtest"
	"delaylb/internal/core"
	"delaylb/internal/model"
	"delaylb/internal/qp"
	"delaylb/internal/sparse"
)

// BenchConfig parameterizes the scale grid. The zero value is not
// useful; start from DefaultBenchConfig.
type BenchConfig struct {
	// Sizes is the list of network sizes m to sweep.
	Sizes []int
	// DenseMax bounds the sizes at which the dense baselines also run
	// (the point of the tier is that dense stops being practical).
	DenseMax int
	// MineMax bounds the sizes for the MinE proxy-strategy cells; their
	// per-iteration cost is O(m²) even on the sparse path.
	MineMax int
	// ChurnDenseMax bounds the sizes at which the dense-representation
	// session-churn cells run (each dense churn event copies the m×m
	// matrix — the cost the block cells exist to avoid measuring twice
	// at m=5000).
	ChurnDenseMax int
	// ChurnEvents is the number of churn events per session-churn cell
	// (default 30: joins, leaves and load updates in equal parts).
	ChurnEvents int
	// Clusters, AvgLoad and Side shape the scenario: a zipf load of the
	// given average on a clustered metro network of that backbone scale.
	Clusters int
	AvgLoad  float64
	Side     float64
	// FWIters and FWTol bound the Frank–Wolfe runs; MineIters the MinE
	// runs.
	FWIters   int
	FWTol     float64
	MineIters int
	// DescentSizes is the grid for the distributed control-plane cells;
	// they run after every centralized cell so the persisted report's
	// existing rows keep their positions. DescentRounds bounds the
	// gradient rounds per cell and DescentParticipation the per-row step
	// probability (simultaneous play herds at scale — see descent).
	DescentSizes         []int
	DescentRounds        int
	DescentParticipation float64
	// FWVariantSizes is the grid for the away-step and pairwise
	// Frank–Wolfe cells. Like the descent tier they run after every
	// pre-existing cell — the persisted report grows by appending, never
	// by renumbering. Same FWIters/FWTol budget as the classic cells, so
	// the gap and iters-to-band columns are directly comparable.
	FWVariantSizes []int
	// MineSparseSizes is the grid for the sparse-state MinE cells: the
	// proxy strategy on core.NewSparseState, the row store that removes
	// the O(m²) identity-allocation wall that kept the proxy-* cells
	// capped at MineMax. Same solver configuration as proxy-sparse, so
	// at overlapping sizes the costs agree bit for bit (the lockstep
	// property the sparse state is pinned to).
	MineSparseSizes []int
	// LatencyUpdateSizes is the grid for the structured latency-update
	// cells: ScaleBackbone / RestoreBlockLatency cycles applied natively
	// on a block session via Session.ApplyLatencyUpdate — O(m + k²) per
	// event where the dense UpdateLatency feed pays O(m²) (the other
	// wall this tier exists to measure closed).
	LatencyUpdateSizes []int
	// Seed is the base seed; cell i uses CellSeed(Seed, i).
	Seed int64
}

// DefaultBenchConfig returns the standing scale grid: m ∈ {100, 500,
// 2000}, dense baselines up to 500, everything derived from seed 1.
func DefaultBenchConfig() BenchConfig {
	return BenchConfig{
		Sizes:                []int{100, 500, 2000},
		DenseMax:             500,
		MineMax:              500,
		ChurnDenseMax:        2000,
		ChurnEvents:          30,
		Clusters:             8,
		AvgLoad:              100,
		Side:                 100,
		FWIters:              600,
		FWTol:                1e-6,
		MineIters:            12,
		DescentSizes:         []int{500, 2000, 5000},
		DescentRounds:        1000,
		DescentParticipation: 0.2,
		FWVariantSizes:       []int{100, 500, 2000, 5000},
		MineSparseSizes:      []int{500, 2000, 5000},
		LatencyUpdateSizes:   []int{500, 2000, 5000},
		Seed:                 1,
	}
}

// BenchEntry is one cell of the scale grid. Cost, Iters, NNZ and Gap
// are deterministic; ElapsedMS, NsPerIter and AllocMB describe the
// machine that produced the report.
type BenchEntry struct {
	M        int    `json:"m"`
	Solver   string `json:"solver"`
	Scenario string `json:"scenario"`

	Cost      float64 `json:"cost"`
	Gap       float64 `json:"gap,omitempty"`
	Iters     int     `json:"iters"`
	NNZ       int     `json:"nnz,omitempty"`
	Converged bool    `json:"converged"`

	ElapsedMS float64 `json:"elapsed_ms"`
	NsPerIter float64 `json:"ns_per_iter"`
	AllocMB   float64 `json:"alloc_mb"`

	// Session-churn cells only: per-event cost of a join/leave/update
	// stream against a live Session. The block representation's
	// ChurnEventAllocKB is O(m + k²); the dense representation's is the
	// O(m²) matrix copy — the drop this column exists to demonstrate.
	ChurnEvents       int     `json:"churn_events,omitempty"`
	ChurnEventNS      float64 `json:"churn_event_ns,omitempty"`
	ChurnEventAllocKB float64 `json:"churn_event_alloc_kb,omitempty"`

	// Descent cells only. RoundsToBand is the first gradient round at or
	// under (1+2%)·oracle (-1: never); BytesPerRound the mean cross-actor
	// message volume per round (deterministic — the O(nnz) wire claim);
	// RoundNS the wall-clock per round with the oracle solve excluded
	// (machine fact). For these cells Gap is the signed relative gap to
	// the oracle (descent can finish below a budgeted Frank–Wolfe cost)
	// and Iters counts gradient rounds.
	RoundsToBand  int     `json:"rounds_to_band,omitempty"`
	BytesPerRound float64 `json:"bytes_per_round,omitempty"`
	RoundNS       float64 `json:"descent_round_ns,omitempty"`

	// Frank–Wolfe variant cells only: the first sweep whose cost is
	// within 2% of the run's own certified lower bound (Cost − Gap);
	// -1 if the budget never reached the band. Deterministic.
	ItersToBand int `json:"iters_to_band,omitempty"`
}

// BenchReport is the persisted form of one harness run.
type BenchReport struct {
	Seed       int64        `json:"seed"`
	GoMaxProcs int          `json:"gomaxprocs"`
	FWIters    int          `json:"fw_iters"`
	FWTol      float64      `json:"fw_tol"`
	MineIters  int          `json:"mine_iters"`
	Entries    []BenchEntry `json:"entries"`
}

// WriteJSON writes the report as one indented JSON document.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// benchCell describes one measurement before it runs.
type benchCell struct {
	m      int
	solver string
}

// cells enumerates the grid in a stable order: per size, the sparse
// Frank–Wolfe path always, the dense Frank–Wolfe and the two MinE
// proxy variants only below their bounds.
func (cfg BenchConfig) cells() []benchCell {
	var out []benchCell
	for _, m := range cfg.Sizes {
		out = append(out, benchCell{m, "frankwolfe-sparse"})
		if m <= cfg.DenseMax {
			out = append(out, benchCell{m, "frankwolfe-dense"})
		}
		if m <= cfg.MineMax {
			out = append(out, benchCell{m, "proxy-sparse"})
			out = append(out, benchCell{m, "proxy-dense"})
		}
		out = append(out, benchCell{m, "session-churn-block"})
		if m <= cfg.ChurnDenseMax {
			out = append(out, benchCell{m, "session-churn-dense"})
		}
	}
	// The distributed tier runs last: the centralized rows above keep
	// the positions the persisted report already has.
	for _, m := range cfg.DescentSizes {
		out = append(out, benchCell{m, "descent"})
	}
	// The active-set Frank–Wolfe tier appends after descent for the same
	// reason: reports regenerated with these cells leave every earlier
	// entry untouched (bench_test.go and cmd/tables pin the pure append).
	for _, m := range cfg.FWVariantSizes {
		out = append(out, benchCell{m, "frankwolfe-away"})
		out = append(out, benchCell{m, "frankwolfe-pairwise"})
	}
	// The sparse-state MinE and structured latency-update tiers append
	// last, same discipline: historical entries keep their bytes.
	for _, m := range cfg.MineSparseSizes {
		out = append(out, benchCell{m, "mine-sparse-state"})
	}
	for _, m := range cfg.LatencyUpdateSizes {
		out = append(out, benchCell{m, "latency-structured-update"})
	}
	return out
}

// scenario builds the scale scenario for one size. The seed is derived
// per size (not per cell) so sparse and dense cells of the same m solve
// the identical instance.
func (cfg BenchConfig) scenario(m int) delaylb.Scenario {
	return delaylb.NewScenario(m).
		WithClusters(cfg.Clusters).
		WithLatency(cfg.Side).
		WithLoads(delaylb.LoadZipf, cfg.AvgLoad).
		WithSeed(CellSeed(cfg.Seed, m))
}

// RunBench runs the grid sequentially — timing cells is the point, so
// no worker pool — and returns the report. Cells run in declaration
// order; ctx cancels between cells, returning the entries finished so
// far along with ctx.Err(). progress, if non-nil, is called after each
// cell.
func RunBench(ctx context.Context, cfg BenchConfig, progress func(done, total int)) (*BenchReport, error) {
	cells := cfg.cells()
	report := &BenchReport{
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		FWIters:    cfg.FWIters,
		FWTol:      cfg.FWTol,
		MineIters:  cfg.MineIters,
	}
	for i, cell := range cells {
		if err := ctx.Err(); err != nil {
			return report, err
		}
		entry, err := cfg.runCell(ctx, cell)
		if err != nil {
			return report, fmt.Errorf("sweep: bench cell m=%d solver=%s: %w", cell.m, cell.solver, err)
		}
		report.Entries = append(report.Entries, entry)
		if progress != nil {
			progress(i+1, len(cells))
		}
	}
	return report, nil
}

// AppendBench extends an existing report in place with every cell of
// cfg's grid the report does not already contain, appending the new
// entries in grid order. Entries already present are left byte-for-byte
// untouched — this is how BENCH_scale.json grows when a new solver tier
// lands without re-running (or re-timing) the historical cells. Returns
// the number of entries appended. progress, if non-nil, is called after
// each new cell.
func AppendBench(ctx context.Context, cfg BenchConfig, report *BenchReport, progress func(done, total int)) (int, error) {
	have := make(map[benchCell]bool, len(report.Entries))
	for _, e := range report.Entries {
		have[benchCell{e.M, e.Solver}] = true
	}
	var missing []benchCell
	for _, cell := range cfg.cells() {
		if !have[cell] {
			missing = append(missing, cell)
		}
	}
	for i, cell := range missing {
		if err := ctx.Err(); err != nil {
			return i, err
		}
		entry, err := cfg.runCell(ctx, cell)
		if err != nil {
			return i, fmt.Errorf("sweep: bench cell m=%d solver=%s: %w", cell.m, cell.solver, err)
		}
		report.Entries = append(report.Entries, entry)
		if progress != nil {
			progress(i+1, len(missing))
		}
	}
	return len(missing), nil
}

func (cfg BenchConfig) runCell(ctx context.Context, cell benchCell) (BenchEntry, error) {
	sc := cfg.scenario(cell.m)
	in, err := sc.Instance()
	if err != nil {
		return BenchEntry{}, err
	}
	entry := BenchEntry{M: cell.m, Solver: cell.solver, Scenario: sc.String()}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	switch cell.solver {
	case "frankwolfe-sparse":
		res := qp.SolveFrankWolfeSparse(in, qp.Options{MaxIters: cfg.FWIters, Tol: cfg.FWTol, Ctx: ctx})
		entry.Cost, entry.Gap, entry.Iters, entry.Converged = res.Cost, res.Gap, res.Iters, res.Converged
		entry.NNZ = res.Rho.NNZ()
	case "frankwolfe-dense":
		res := qp.SolveFrankWolfe(in, qp.Options{MaxIters: cfg.FWIters, Tol: cfg.FWTol, Ctx: ctx})
		entry.Cost, entry.Gap, entry.Iters, entry.Converged = res.Cost, res.Gap, res.Iters, res.Converged
	case "frankwolfe-away", "frankwolfe-pairwise":
		variant := qp.VariantAway
		if cell.solver == "frankwolfe-pairwise" {
			variant = qp.VariantPairwise
		}
		c := convtest.Run(in, variant, qp.Options{MaxIters: cfg.FWIters, Tol: cfg.FWTol, Ctx: ctx})
		entry.Cost, entry.Gap, entry.Iters, entry.Converged = c.Cost, c.Gap, c.Iters, c.Converged
		entry.NNZ = c.NNZ
		entry.ItersToBand = convtest.ItersToBand(c.Costs, c.Cost-c.Gap, 0.02)
	case "proxy-sparse", "proxy-dense":
		st := core.NewIdentityState(in)
		tr := core.RunState(st, core.Config{
			Strategy:      core.StrategyProxy,
			MaxIters:      cfg.MineIters,
			SparseColumns: cell.solver == "proxy-sparse",
			Rng:           rand.New(rand.NewSource(CellSeed(cfg.Seed, cell.m))),
			Ctx:           ctx,
		})
		entry.Cost, entry.Iters, entry.Converged = st.Cost(), tr.Iters, tr.Converged
		if cell.solver == "proxy-sparse" {
			entry.NNZ = st.Alloc.NNZ()
		}
	case "mine-sparse-state":
		// Identical configuration to proxy-sparse — strategy, iteration
		// budget, seed, column index — on the sparse row store instead of
		// the dense m×m allocation, so at sizes both tiers cover the costs
		// agree bit for bit while this one runs at m=5000 where the dense
		// identity state alone would be ~200 MB.
		st := core.NewSparseState(in, identitySparse(in))
		tr := core.RunState(st, core.Config{
			Strategy:      core.StrategyProxy,
			MaxIters:      cfg.MineIters,
			SparseColumns: true,
			Rng:           rand.New(rand.NewSource(CellSeed(cfg.Seed, cell.m))),
			Ctx:           ctx,
		})
		entry.Cost, entry.Iters, entry.Converged = st.Cost(), tr.Iters, tr.Converged
		entry.NNZ = st.Rows.NNZ()
	case "latency-structured-update":
		if err := cfg.runLatencyUpdateCell(&entry, sc); err != nil {
			return BenchEntry{}, err
		}
	case "session-churn-block", "session-churn-dense":
		if err := cfg.runChurnCell(&entry, sc, cell.solver == "session-churn-dense"); err != nil {
			return BenchEntry{}, err
		}
	case "descent":
		if err := cfg.runDescentCell(ctx, &entry, in, cell.m); err != nil {
			return BenchEntry{}, err
		}
	default:
		return BenchEntry{}, fmt.Errorf("unknown bench solver %q", cell.solver)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	entry.ElapsedMS = float64(elapsed.Nanoseconds()) / 1e6
	if entry.Iters > 0 {
		entry.NsPerIter = float64(elapsed.Nanoseconds()) / float64(entry.Iters)
	}
	entry.AllocMB = float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
	return entry, ctx.Err()
}

// runChurnCell replays a deterministic churn stream — metro joins,
// leaves and load updates in equal parts — against a live Session and
// records the per-event wall-clock and allocation cost. No solving: the
// cell isolates the state-maintenance cost the copy-on-write session
// refactor targets. Cost is the final session ΣC_i, which is identical
// between the block and dense cells (pinned at test scale by
// TestSessionChurnDeterministic).
func (cfg BenchConfig) runChurnCell(entry *BenchEntry, sc delaylb.Scenario, dense bool) error {
	events := cfg.ChurnEvents
	if events <= 0 {
		events = 30
	}
	if dense {
		sc = sc.WithDenseLatency()
	}
	sys, err := sc.Build()
	if err != nil {
		return err
	}
	var sess *delaylb.Session
	if dense {
		sess = sys.NewSession()
	} else {
		sess = sys.NewSession(delaylb.WithSparse())
	}
	// The dense representation needs explicit join rows; derive them
	// from the block twin of the same seed (identical network).
	var delay [][]float64
	labels := sess.Clusters()
	if d, l, ok := sess.BlockLatency(); ok {
		delay, labels = d, l
	} else {
		blockSc := sc
		blockSc.DenseLatency = false
		bsys, err := blockSc.Build()
		if err != nil {
			return err
		}
		delay, labels, _ = bsys.NewSession().BlockLatency()
	}
	k := len(delay)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	loads := sess.Loads()
	for ev := 0; ev < events; ev++ {
		switch ev % 3 {
		case 0: // metro join
			spec := delaylb.ServerSpec{Speed: 2, Load: float64(10 + ev), Cluster: ev % k}
			if dense {
				spec.LatencyTo = make([]float64, len(labels))
				spec.LatencyFrom = make([]float64, len(labels))
				for j, h := range labels {
					spec.LatencyTo[j] = delay[spec.Cluster][h]
					spec.LatencyFrom[j] = delay[h][spec.Cluster]
				}
			}
			if err := sess.AddServer(spec); err != nil {
				return err
			}
			labels = append(labels, spec.Cluster)
		case 1: // the newcomer leaves again
			if err := sess.RemoveServer(sess.M() - 1); err != nil {
				return err
			}
			labels = labels[:len(labels)-1]
		default: // load update
			loads[ev%len(loads)] *= 1.25
			if err := sess.UpdateLoads(loads); err != nil {
				return err
			}
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	entry.Cost = sess.Cost()
	entry.Iters = events
	entry.Converged = true
	entry.ChurnEvents = events
	entry.ChurnEventNS = float64(elapsed.Nanoseconds()) / float64(events)
	entry.ChurnEventAllocKB = float64(after.TotalAlloc-before.TotalAlloc) / float64(events) / 1024
	return nil
}

// identitySparse builds the sparse identity allocation r_ii = n_i
// without ever materializing the dense m×m form (the point of the
// mine-sparse-state tier).
func identitySparse(in *model.Instance) *sparse.Matrix {
	m := in.M()
	mx := sparse.New(m, m)
	for i := 0; i < m; i++ {
		mx.Set(i, i, in.Load[i])
	}
	return mx
}

// runLatencyUpdateCell measures the structured network-change path: a
// deterministic stream of whole-backbone degradations and bit-exact
// restores applied natively on a block session via
// Session.ApplyLatencyUpdate. Per-event cost is O(m + k²) — the dense
// UpdateLatency feed for the same change is an O(m²) matrix copy, which
// is why the churn benchmark's latency-shift cell was capped at small m
// before this tier existed. No solving; the allocation (and hence Cost)
// is untouched by construction.
func (cfg BenchConfig) runLatencyUpdateCell(entry *BenchEntry, sc delaylb.Scenario) error {
	events := cfg.ChurnEvents
	if events <= 0 {
		events = 30
	}
	sys, err := sc.Build()
	if err != nil {
		return err
	}
	sess := sys.NewSession(delaylb.WithSparse())
	delay, _, ok := sess.BlockLatency()
	if !ok {
		return fmt.Errorf("latency-structured-update cell needs a block-latency scenario, got %s", sc)
	}
	const degrade = 1.25
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for ev := 0; ev < events; ev++ {
		var u delaylb.LatencyUpdate
		if ev%2 == 0 {
			u = delaylb.ScaleBackbone(degrade)
		} else {
			u = delaylb.RestoreBlockLatency(delay)
		}
		if err := sess.ApplyLatencyUpdate(u); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	entry.Cost = sess.Cost()
	entry.Iters = events
	entry.Converged = true
	entry.ChurnEvents = events
	entry.ChurnEventNS = float64(elapsed.Nanoseconds()) / float64(events)
	entry.ChurnEventAllocKB = float64(after.TotalAlloc-before.TotalAlloc) / float64(events) / 1024
	return nil
}

// runDescentCell measures the distributed control plane on the same
// instance the centralized cells of this size solve: a sparse
// Frank–Wolfe oracle sets the target, then the plane runs gradient
// rounds until quiet or the budget. RoundNS times the rounds only —
// the oracle is the observer's reference, not part of the tier.
func (cfg BenchConfig) runDescentCell(ctx context.Context, entry *BenchEntry, in *model.Instance, m int) error {
	oracle := qp.SolveFrankWolfeSparse(in, qp.Options{MaxIters: cfg.FWIters, Tol: cfg.FWTol, Ctx: ctx})
	rounds := cfg.DescentRounds
	if rounds <= 0 {
		rounds = 1000
	}
	part := cfg.DescentParticipation
	if part <= 0 {
		part = 0.2
	}
	p, err := descent.NewPlane(in, descent.Config{
		Seed:          CellSeed(cfg.Seed, m),
		Target:        oracle.Cost,
		Participation: part,
	})
	if err != nil {
		return err
	}
	start := time.Now()
	rep, err := p.Run(rounds)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	entry.Cost = rep.Cost
	entry.Gap = rep.RelGap
	entry.Iters = rep.Rounds
	entry.NNZ = rep.NNZ
	entry.Converged = rep.RoundsToBand >= 0
	entry.RoundsToBand = rep.RoundsToBand
	entry.BytesPerRound = float64(rep.Bytes) / float64(rep.Rounds)
	entry.RoundNS = float64(elapsed.Nanoseconds()) / float64(rep.Rounds)
	return nil
}

// FprintBenchReport renders the report as the human-readable table the
// command prints alongside the JSON artifact.
func FprintBenchReport(w io.Writer, r *BenchReport) {
	fmt.Fprintf(w, "== Scale tier: zipf loads on a clustered metro network (seed %d) ==\n", r.Seed)
	fmt.Fprintf(w, "%6s %-19s %12s %10s %6s %9s %12s %10s %12s %14s %7s %11s\n",
		"m", "solver", "cost", "gap", "iters", "nnz", "ns/iter", "alloc MB", "ns/event", "KB/event", "r2band", "B/round")
	for _, e := range r.Entries {
		nnz := "-"
		if e.NNZ > 0 {
			nnz = fmt.Sprintf("%d", e.NNZ)
		}
		gap := "-"
		if e.Gap != 0 {
			gap = fmt.Sprintf("%.3g", e.Gap)
		}
		evNS, evKB := "-", "-"
		if e.ChurnEvents > 0 {
			evNS = fmt.Sprintf("%.0f", e.ChurnEventNS)
			evKB = fmt.Sprintf("%.1f", e.ChurnEventAllocKB)
		}
		band, bpr := "-", "-"
		if e.Solver == "descent" {
			band = fmt.Sprintf("%d", e.RoundsToBand)
			bpr = fmt.Sprintf("%.4g", e.BytesPerRound)
		} else if e.ItersToBand != 0 {
			band = fmt.Sprintf("%d", e.ItersToBand)
		}
		fmt.Fprintf(w, "%6d %-19s %12.6g %10s %6d %9s %12.0f %10.1f %12s %14s %7s %11s\n",
			e.M, e.Solver, e.Cost, gap, e.Iters, nnz, e.NsPerIter, e.AllocMB, evNS, evKB, band, bpr)
	}
}
