package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"delaylb"
)

func TestCellSeedIndependence(t *testing.T) {
	seen := map[int64]bool{}
	for base := int64(0); base < 4; base++ {
		for i := 0; i < 1000; i++ {
			s := CellSeed(base, i)
			if seen[s] {
				t.Fatalf("CellSeed(%d, %d) = %d collides", base, i, s)
			}
			seen[s] = true
		}
	}
	if CellSeed(1, 0) == CellSeed(2, 0) {
		t.Error("base seed does not separate streams")
	}
}

func TestRunCellsOrderStable(t *testing.T) {
	cells := make([]int, 64)
	for i := range cells {
		cells[i] = i
	}
	got, done, err := RunCells(context.Background(), Runner{Workers: 8, Seed: 3}, cells,
		func(ctx context.Context, i int, c int, rng *rand.Rand) (int, error) {
			return c * 2, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if !done[i] || v != i*2 {
			t.Fatalf("cell %d: got %d done=%v", i, v, done[i])
		}
	}
}

func TestRunCellsRNGIndependentOfWorkers(t *testing.T) {
	draw := func(workers int) []int64 {
		out, _, err := RunCells(context.Background(), Runner{Workers: workers, Seed: 9}, make([]struct{}, 32),
			func(ctx context.Context, i int, _ struct{}, rng *rand.Rand) (int64, error) {
				return rng.Int63(), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !reflect.DeepEqual(draw(1), draw(7)) {
		t.Fatal("per-cell RNG streams depend on worker count")
	}
}

func TestRunCellsPropagatesLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	results, done, err := RunCells(context.Background(), Runner{Workers: 4, Seed: 1}, []int{0, 1, 2, 3},
		func(ctx context.Context, i int, c int, rng *rand.Rand) (int, error) {
			if c == 1 || c == 3 {
				return 0, sentinel
			}
			return c + 10, nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if !done[0] || done[1] || !done[2] || done[3] {
		t.Fatalf("done = %v", done)
	}
	if results[0] != 10 || results[2] != 12 {
		t.Fatalf("healthy cells lost: %v", results)
	}
}

func TestRunCellsProgressSerializedAndComplete(t *testing.T) {
	var mu sync.Mutex
	var counts []int
	_, _, err := RunCells(context.Background(), Runner{Workers: 6, Seed: 1, Progress: func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if total != 20 {
			t.Errorf("total = %d, want 20", total)
		}
		counts = append(counts, done)
	}}, make([]int, 20), func(ctx context.Context, i int, c int, rng *rand.Rand) (int, error) {
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 20 {
		t.Fatalf("progress called %d times, want 20", len(counts))
	}
	for i, c := range counts {
		if c != i+1 {
			t.Fatalf("progress counts out of order: %v", counts)
		}
	}
}

// Cancellation mid-sweep: no new cells start, completed rows are kept,
// and the error is ctx.Err().
func TestRunCellsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var once sync.Once
	results, done, err := RunCells(ctx, Runner{Workers: 2, Seed: 1}, make([]int, 50),
		func(ctx context.Context, i int, c int, rng *rand.Rand) (string, error) {
			once.Do(func() {
				cancel()
				close(release)
			})
			<-release
			if ctx.Err() != nil && i > 1 {
				return "", ctx.Err()
			}
			return "row", nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	completed := 0
	for i := range done {
		if done[i] {
			if results[i] != "row" {
				t.Fatalf("done cell %d has no row", i)
			}
			completed++
		}
	}
	if completed == 0 || completed == len(done) {
		t.Fatalf("expected a partial sweep, got %d/%d cells", completed, len(done))
	}
}

// The acceptance bar of this PR: aggregates are byte-identical between
// workers=1 and workers=8 for the same seed, across every parallelized
// producer. Wall-clock for both runs is logged so the multicore speedup
// is visible in test output (-v).
func TestSweepDeterminismAcrossWorkers(t *testing.T) {
	conv := ConvergenceConfig{
		Sizes:     []int{20, 30},
		Dists:     []delaylb.LoadKind{delaylb.LoadUniform, delaylb.LoadExponential, delaylb.LoadPeak},
		AvgLoads:  []float64{50},
		PeakTotal: 10000,
		Networks:  []delaylb.NetworkKind{delaylb.NetHomogeneous, delaylb.NetPlanetLab},
		Tol:       0.02,
		Repeats:   2,
		Seed:      7,
		MaxIters:  60,
	}
	selfish := SelfishnessConfig{
		Sizes:      []int{15},
		SpeedKinds: []delaylb.SpeedKind{delaylb.SpeedConst, delaylb.SpeedUniform},
		LavBuckets: []LavBucket{{Label: "lav=50", Loads: []float64{50}}},
		Networks:   []delaylb.NetworkKind{delaylb.NetHomogeneous, delaylb.NetPlanetLab},
		Repeats:    2,
		Seed:       7,
	}
	fig2 := Figure2Config{
		Sizes:      []int{60, 90},
		PeakTotal:  10000,
		Iterations: 8,
		Seed:       7,
	}
	report := func(workers int) ([]byte, time.Duration) {
		c, s, f := conv, selfish, fig2
		c.Workers, s.Workers, f.Workers = workers, workers, workers
		start := time.Now()
		r := Report{Seed: 7, Workers: workers}
		var err error
		if r.Table1, err = ConvergenceTableContext(context.Background(), c); err != nil {
			t.Fatal(err)
		}
		if r.Table3, err = SelfishnessTableContext(context.Background(), s); err != nil {
			t.Fatal(err)
		}
		if r.Figure2, err = Figure2Context(context.Background(), f); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		r.Workers = 0 // exclude the only intentionally differing field
		buf, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return buf, elapsed
	}
	serial, tSerial := report(1)
	parallel, tParallel := report(8)
	if string(serial) != string(parallel) {
		t.Fatalf("aggregates differ between workers=1 and workers=8:\nserial:   %s\nparallel: %s",
			serial, parallel)
	}
	t.Logf("workers=1: %v, workers=8: %v (speedup %.2fx), %d bytes of aggregates identical",
		tSerial, tParallel, tSerial.Seconds()/tParallel.Seconds(), len(serial))
}

// Cancelling a convergence sweep mid-run returns cleanly aggregated
// partial rows: every sample in them came from a cell that fully
// completed.
func TestConvergenceTableCancellation(t *testing.T) {
	cfg := ConvergenceConfig{
		Sizes:     []int{20, 30, 40},
		Dists:     []delaylb.LoadKind{delaylb.LoadUniform, delaylb.LoadExponential},
		AvgLoads:  []float64{50},
		PeakTotal: 10000,
		Networks:  []delaylb.NetworkKind{delaylb.NetPlanetLab},
		Tol:       0.02,
		Repeats:   4,
		Seed:      1,
		MaxIters:  60,
		Workers:   2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Progress = func(done, total int) {
		if done == 3 {
			cancel()
		}
	}
	rows, err := ConvergenceTableContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	n := 0
	for _, r := range rows {
		n += r.Summary.N
		if r.Summary.Avg <= 0 {
			t.Errorf("partial row %+v has nonpositive average", r)
		}
	}
	total := len(cfg.cells())
	if n == 0 || n >= total {
		t.Fatalf("partial aggregate has %d samples, want in (0, %d)", n, total)
	}
}
