// Package sweep is the experiment harness: it rebuilds the instances of
// the paper's evaluation (§VI-A settings), runs the algorithms, and
// aggregates the rows of every table and figure. cmd/tables and the
// repository-level benchmarks are thin wrappers around this package.
//
// The package is public so downstream users can rerun and extend the
// evaluation; for one-off instances prefer the root package's Scenario
// builder, which constructs the same families from a declarative,
// seed-deterministic description.
package sweep

import (
	"fmt"
	"io"
	"math/rand"

	"delaylb/internal/core"
	"delaylb/internal/model"
	"delaylb/internal/netmodel"
	"delaylb/internal/qp"
	"delaylb/internal/workload"
)

// Partner-selection strategies for ConvergenceConfig/Figure2Config,
// re-exported so harness users need not import internal packages.
const (
	StrategyExact  = core.StrategyExact
	StrategyHybrid = core.StrategyHybrid
	StrategyProxy  = core.StrategyProxy
)

// NetworkKind selects one of the two network families of §VI-A. Its
// values are the paper's own table labels ("PL", "c=20") and are distinct
// from the root package's delaylb.NetworkKind scenario names — this enum
// keys experiment rows, delaylb.Scenario is the supported way to build
// instances.
type NetworkKind string

const (
	// NetHomogeneous: all pairwise latencies equal to 20 ms.
	NetHomogeneous NetworkKind = "c=20"
	// NetPlanetLab: the synthetic PlanetLab-like heterogeneous network.
	NetPlanetLab NetworkKind = "PL"
)

// SpeedKind selects the server speed family of Table III.
type SpeedKind string

const (
	// SpeedConst: every server has speed 1 ("const s_i").
	SpeedConst SpeedKind = "const"
	// SpeedUniform: speeds uniform on [1, 5] ("uniform s_i").
	SpeedUniform SpeedKind = "uniform"
)

// BuildInstance assembles one experiment instance: m servers, the given
// network, speed family and load distribution with the given average
// (for the peak distribution avg is the total peak size).
func BuildInstance(m int, net NetworkKind, sk SpeedKind, dist workload.Kind, avg float64, rng *rand.Rand) *model.Instance {
	var lat [][]float64
	switch net {
	case NetHomogeneous:
		lat = netmodel.Homogeneous(m, 20)
	case NetPlanetLab:
		lat = netmodel.PlanetLab(m, netmodel.DefaultPlanetLabConfig(), rng)
	default:
		panic(fmt.Sprintf("sweep: unknown network kind %q", net))
	}
	var speeds []float64
	switch sk {
	case SpeedConst:
		speeds = workload.ConstSpeeds(m, 1)
	case SpeedUniform:
		speeds = workload.UniformSpeeds(m, 1, 5, rng)
	default:
		panic(fmt.Sprintf("sweep: unknown speed kind %q", sk))
	}
	return &model.Instance{
		Speed:   speeds,
		Load:    workload.Loads(dist, m, avg, rng),
		Latency: lat,
	}
}

// Figure1Structure writes the Figure 1 artifact — the sparsity pattern of
// the dense Q matrix of the §III quadratic program — for an m-server
// homogeneous instance.
func Figure1Structure(w io.Writer, m int) error {
	in := BuildInstance(m, NetHomogeneous, SpeedConst, workload.KindUniform, 10, rand.New(rand.NewSource(1)))
	return qp.FprintStructure(w, in)
}

// SizeGroup formats a network size the way the paper's tables group them
// ("m ≤ 50" pools 20, 30 and 50).
func SizeGroup(m int) string {
	if m <= 50 {
		return "m<=50"
	}
	return fmt.Sprintf("m=%d", m)
}
