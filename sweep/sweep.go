// Package sweep is the experiment harness: it rebuilds the instances of
// the paper's evaluation (§VI-A settings), runs the algorithms on a
// bounded worker pool, and aggregates the rows of every table and
// figure. cmd/tables and the repository-level benchmarks are thin
// wrappers around this package.
//
// Every experiment cell is described by a delaylb.Scenario — the same
// declarative, seed-deterministic builder downstream users call — so a
// cell printed in a log can be rebuilt bit-identically anywhere. Cells
// are independent: the Runner fans them out over goroutines, each with
// a private RNG derived from (base seed, cell index), which makes the
// aggregates a pure function of the configuration regardless of worker
// count (see runner.go and the golden tests).
package sweep

import (
	"fmt"
	"io"

	"delaylb"
	"delaylb/internal/core"
	"delaylb/internal/model"
	"delaylb/internal/qp"
)

// Partner-selection strategies for ConvergenceConfig/Figure2Config,
// re-exported so harness users need not import internal packages.
const (
	StrategyExact  = core.StrategyExact
	StrategyHybrid = core.StrategyHybrid
	StrategyProxy  = core.StrategyProxy
)

// PaperNetLabel renders a network family the way the paper's tables
// label it: "c=20" for the homogeneous 20 ms network, "PL" for the
// PlanetLab-like one. Other kinds fall back to their scenario name.
func PaperNetLabel(k delaylb.NetworkKind) string {
	switch k {
	case delaylb.NetHomogeneous:
		return "c=20"
	case delaylb.NetPlanetLab:
		return "PL"
	}
	return string(k)
}

// PaperSpeedLabel renders a speed family the way Table III labels it
// ("const s_i", "uniform s_i" — shortened to the family name).
func PaperSpeedLabel(k delaylb.SpeedKind) string {
	return string(k)
}

// cellScenario describes one experiment cell of the §VI-A grid as a
// delaylb.Scenario: the paper's speed ranges (const 1, uniform [1, 5]),
// 20 ms homogeneous latency, and the given seed. Every family of the
// evaluation — including the Zipf extension — is expressible this way.
func cellScenario(m int, net delaylb.NetworkKind, sk delaylb.SpeedKind, dist delaylb.LoadKind, avg float64, seed int64) delaylb.Scenario {
	sc := delaylb.NewScenario(m).
		WithNetwork(net).
		WithLoads(dist, avg).
		WithSeed(seed)
	if sk == delaylb.SpeedConst {
		sc = sc.WithSpeeds(delaylb.SpeedConst, 1, 1)
	} else {
		// Pass the kind through even though [1, 5] is already the
		// default, so Scenario.Validate rejects unknown speed kinds
		// instead of silently running them as uniform.
		sc = sc.WithSpeeds(sk, 1, 5)
	}
	return sc
}

// buildCell materializes a cell scenario into the internal instance the
// algorithms run on.
func buildCell(m int, net delaylb.NetworkKind, sk delaylb.SpeedKind, dist delaylb.LoadKind, avg float64, seed int64) (*model.Instance, error) {
	return cellScenario(m, net, sk, dist, avg, seed).Instance()
}

// Figure1Structure writes the Figure 1 artifact — the sparsity pattern of
// the dense Q matrix of the §III quadratic program — for an m-server
// homogeneous instance.
func Figure1Structure(w io.Writer, m int) error {
	in, err := buildCell(m, delaylb.NetHomogeneous, delaylb.SpeedConst, delaylb.LoadUniform, 10, 1)
	if err != nil {
		return err
	}
	return qp.FprintStructure(w, in)
}

// SizeGroup formats a network size the way the paper's tables group them
// ("m ≤ 50" pools 20, 30 and 50).
func SizeGroup(m int) string {
	if m <= 50 {
		return "m<=50"
	}
	return fmt.Sprintf("m=%d", m)
}
