package sweep

import (
	"context"
	"encoding/json"
	"os"
	"testing"
)

// TestPersistedBenchReport pins the repository's committed
// BENCH_scale.json against the code that (re)generates it.
//
// Structure: every later tier landed as a pure append — first the
// Frank–Wolfe variant cells, then the sparse MinE-state cells, then the
// structured latency-update cells, each sitting strictly after all
// earlier tiers, so the diff that introduced each touched no
// pre-existing line. Content: the deterministic columns of the cheap
// cells must reproduce exactly when re-run here (same seed, same
// budget), which both proves the committed numbers are honest and
// proves the newer engines did not perturb the classic solver's
// trajectory. And the tiers' headline facts: the away-step variant
// reaches the 2% optimality band within the 600-iteration budget at
// every grid size, including the m where the classic cells' persisted
// gap shows them still unconverged; the sparse-state cells match the
// dense proxy cells' costs bit for bit at the sizes both cover; the
// latency-update cells record a real per-event cost.
func TestPersistedBenchReport(t *testing.T) {
	data, err := os.ReadFile("../BENCH_scale.json")
	if err != nil {
		t.Fatal(err)
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultBenchConfig()
	cfg.Seed = rep.Seed
	if rep.FWIters != cfg.FWIters || rep.FWTol != cfg.FWTol {
		t.Fatalf("report budget (%d, %g) differs from DefaultBenchConfig (%d, %g) — regenerate",
			rep.FWIters, rep.FWTol, cfg.FWIters, cfg.FWTol)
	}

	// Stacked pure appends: tier rank must be non-decreasing over the
	// file, so no historical cell follows any later tier's first cell.
	tier := func(s string) int {
		switch s {
		case "frankwolfe-away", "frankwolfe-pairwise":
			return 1
		case "mine-sparse-state":
			return 2
		case "latency-structured-update":
			return 3
		default:
			return 0
		}
	}
	prev := 0
	seen := map[int]bool{}
	for i, e := range rep.Entries {
		tr := tier(e.Solver)
		if tr < prev {
			t.Fatalf("entry %d (%s, tier %d) follows tier %d — the append invariant is broken", i, e.Solver, tr, prev)
		}
		prev = tr
		seen[tr] = true
	}
	for tr := 1; tr <= 3; tr++ {
		if !seen[tr] {
			t.Fatalf("report is missing tier %d cells — run cmd/tables -benchappend", tr)
		}
	}

	classicCost := map[int]float64{}
	classicGap := map[int]float64{}
	proxyCost := map[int]float64{}
	for _, e := range rep.Entries {
		if e.Solver == "frankwolfe-sparse" {
			classicCost[e.M], classicGap[e.M] = e.Cost, e.Gap
		}
		if e.Solver == "proxy-sparse" {
			proxyCost[e.M] = e.Cost
		}
	}
	for _, e := range rep.Entries {
		switch tier(e.Solver) {
		case 1:
			if e.ItersToBand <= 0 || e.ItersToBand > rep.FWIters {
				t.Errorf("m=%d %s: iters_to_band %d outside (0, %d] — the 2%% band was not reached within budget",
					e.M, e.Solver, e.ItersToBand, rep.FWIters)
			}
			if cost, ok := classicCost[e.M]; ok {
				if e.Cost > cost*(1+1e-9) {
					t.Errorf("m=%d %s: cost %v above the classic 600-iteration cost %v", e.M, e.Solver, e.Cost, cost)
				}
				if classicGap[e.M] <= 0 {
					t.Errorf("m=%d: classic gap %v not positive — the stall the variant tier fixes is gone, revisit the grid",
						e.M, classicGap[e.M])
				}
			}
			if e.NNZ <= 0 {
				t.Errorf("m=%d %s: no nnz recorded", e.M, e.Solver)
			}
		case 2:
			if e.NNZ <= 0 {
				t.Errorf("m=%d %s: no nnz recorded", e.M, e.Solver)
			}
			// Identical solver configuration, dense MinE state swapped for
			// the sparse row store: the persisted costs must agree bit for
			// bit at the sizes the dense proxy tier could afford.
			if want, ok := proxyCost[e.M]; ok && e.Cost != want {
				t.Errorf("m=%d: mine-sparse-state cost %v != proxy-sparse %v — the sparse state drifted off the oracle",
					e.M, e.Cost, want)
			}
		case 3:
			if e.ChurnEvents <= 0 || e.ChurnEventNS <= 0 {
				t.Errorf("m=%d %s: no per-event cost recorded: %+v", e.M, e.Solver, e)
			}
		}
	}
	wantCells := map[string][]int{
		"frankwolfe-away":           cfg.FWVariantSizes,
		"frankwolfe-pairwise":       cfg.FWVariantSizes,
		"mine-sparse-state":         cfg.MineSparseSizes,
		"latency-structured-update": cfg.LatencyUpdateSizes,
	}
	for solver, sizes := range wantCells {
		for _, m := range sizes {
			found := false
			for _, e := range rep.Entries {
				if e.M == m && e.Solver == solver {
					found = true
				}
			}
			if !found {
				t.Errorf("grid cell m=%d %s missing from the persisted report", m, solver)
			}
		}
	}

	// Reproduce the cheap cells' deterministic columns bit for bit — the
	// m=100 classic cell predates this tier, so its reproduction is the
	// "pre-existing cells untouched" check in executable form. Timings
	// and allocations are machine facts and deliberately unchecked.
	for _, want := range rep.Entries {
		if want.M != 100 {
			continue
		}
		switch want.Solver {
		case "frankwolfe-sparse", "frankwolfe-away", "frankwolfe-pairwise":
		default:
			continue
		}
		got, err := cfg.runCell(context.Background(), benchCell{want.M, want.Solver})
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost != want.Cost || got.Gap != want.Gap || got.Iters != want.Iters ||
			got.NNZ != want.NNZ || got.Converged != want.Converged || got.ItersToBand != want.ItersToBand {
			t.Errorf("m=%d %s: persisted (cost %v gap %v iters %d nnz %d conv %v band %d) != recomputed (cost %v gap %v iters %d nnz %d conv %v band %d)",
				want.M, want.Solver,
				want.Cost, want.Gap, want.Iters, want.NNZ, want.Converged, want.ItersToBand,
				got.Cost, got.Gap, got.Iters, got.NNZ, got.Converged, got.ItersToBand)
		}
	}
}
