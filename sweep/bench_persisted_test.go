package sweep

import (
	"context"
	"encoding/json"
	"os"
	"testing"
)

// TestPersistedBenchReport pins the repository's committed
// BENCH_scale.json against the code that (re)generates it.
//
// Structure: the Frank–Wolfe variant tier landed as a pure append — the
// away/pairwise cells sit strictly after every historical entry, so the
// diff that introduced them touched no pre-existing line. Content: the
// deterministic columns of the cheap cells must reproduce exactly when
// re-run here (same seed, same budget), which both proves the committed
// numbers are honest and proves the variant engine did not perturb the
// classic solver's trajectory. And the headline acceptance fact: the
// away-step variant reaches the 2% optimality band within the
// 600-iteration budget at every grid size, including the m where the
// classic cells' persisted gap shows them still unconverged.
func TestPersistedBenchReport(t *testing.T) {
	data, err := os.ReadFile("../BENCH_scale.json")
	if err != nil {
		t.Fatal(err)
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultBenchConfig()
	cfg.Seed = rep.Seed
	if rep.FWIters != cfg.FWIters || rep.FWTol != cfg.FWTol {
		t.Fatalf("report budget (%d, %g) differs from DefaultBenchConfig (%d, %g) — regenerate",
			rep.FWIters, rep.FWTol, cfg.FWIters, cfg.FWTol)
	}

	isVariant := func(s string) bool { return s == "frankwolfe-away" || s == "frankwolfe-pairwise" }

	// Pure append: no historical cell after the first variant cell.
	firstVariant := -1
	for i, e := range rep.Entries {
		if isVariant(e.Solver) {
			if firstVariant < 0 {
				firstVariant = i
			}
		} else if firstVariant >= 0 {
			t.Fatalf("entry %d (%s) follows the variant tier — the append invariant is broken", i, e.Solver)
		}
	}
	if firstVariant < 0 {
		t.Fatal("report has no Frank–Wolfe variant cells — run cmd/tables -benchappend")
	}

	classicCost := map[int]float64{}
	classicGap := map[int]float64{}
	for _, e := range rep.Entries {
		if e.Solver == "frankwolfe-sparse" {
			classicCost[e.M], classicGap[e.M] = e.Cost, e.Gap
		}
	}
	for _, e := range rep.Entries[firstVariant:] {
		if e.ItersToBand <= 0 || e.ItersToBand > rep.FWIters {
			t.Errorf("m=%d %s: iters_to_band %d outside (0, %d] — the 2%% band was not reached within budget",
				e.M, e.Solver, e.ItersToBand, rep.FWIters)
		}
		if cost, ok := classicCost[e.M]; ok {
			if e.Cost > cost*(1+1e-9) {
				t.Errorf("m=%d %s: cost %v above the classic 600-iteration cost %v", e.M, e.Solver, e.Cost, cost)
			}
			if classicGap[e.M] <= 0 {
				t.Errorf("m=%d: classic gap %v not positive — the stall the variant tier fixes is gone, revisit the grid",
					e.M, classicGap[e.M])
			}
		}
		if e.NNZ <= 0 {
			t.Errorf("m=%d %s: no nnz recorded", e.M, e.Solver)
		}
	}
	for _, m := range cfg.FWVariantSizes {
		for _, solver := range []string{"frankwolfe-away", "frankwolfe-pairwise"} {
			found := false
			for _, e := range rep.Entries[firstVariant:] {
				if e.M == m && e.Solver == solver {
					found = true
				}
			}
			if !found {
				t.Errorf("grid cell m=%d %s missing from the persisted report", m, solver)
			}
		}
	}

	// Reproduce the cheap cells' deterministic columns bit for bit — the
	// m=100 classic cell predates this tier, so its reproduction is the
	// "pre-existing cells untouched" check in executable form. Timings
	// and allocations are machine facts and deliberately unchecked.
	for _, want := range rep.Entries {
		if want.M != 100 {
			continue
		}
		switch want.Solver {
		case "frankwolfe-sparse", "frankwolfe-away", "frankwolfe-pairwise":
		default:
			continue
		}
		got, err := cfg.runCell(context.Background(), benchCell{want.M, want.Solver})
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost != want.Cost || got.Gap != want.Gap || got.Iters != want.Iters ||
			got.NNZ != want.NNZ || got.Converged != want.Converged || got.ItersToBand != want.ItersToBand {
			t.Errorf("m=%d %s: persisted (cost %v gap %v iters %d nnz %d conv %v band %d) != recomputed (cost %v gap %v iters %d nnz %d conv %v band %d)",
				want.M, want.Solver,
				want.Cost, want.Gap, want.Iters, want.NNZ, want.Converged, want.ItersToBand,
				got.Cost, got.Gap, got.Iters, got.NNZ, got.Converged, got.ItersToBand)
		}
	}
}
