package sweep

// The WAN fault-tolerance table: the descent plane racing its
// centralized oracle over a descent.SimTransport while one fault class
// at a time — and finally all of them at once, plus a crash — batters
// the wire. Each row aggregates the cooperative gap, the rounds back
// into the 2% band, and the crash drill's lost-vs-recovered mass over a
// few seeds. The golden test pins the rows for a fixed seed; like every
// table in this package they are independent of the worker count,
// because fault schedules are pure functions of (plan seed, round,
// edge), never of scheduling.

import (
	"context"
	"math/rand"

	"delaylb"
	"delaylb/descent"
	"delaylb/internal/qp"
	"delaylb/internal/stats"
	"delaylb/obs"
)

// FaultsConfig drives the fault-tolerance table.
type FaultsConfig struct {
	// M / Clusters / Dist / AvgLoad fix the clustered instance family
	// every cell draws from.
	M        int
	Clusters int
	Dist     delaylb.LoadKind
	AvgLoad  float64
	// Rounds bounds each plane run; cells that never enter the 2% band
	// report the full budget (censored, not a sentinel).
	Rounds int
	// Participation is the per-row step probability (0: full).
	Participation float64
	// FWIters/FWTol bound the centralized Frank–Wolfe oracle.
	FWIters int
	FWTol   float64
	// Repeats is the number of seeds per fault scenario.
	Repeats int
	// Seed is the base seed; cell i derives its stream from
	// CellSeed(Seed, i).
	Seed int64
	// Workers bounds the worker pool (<= 0: all CPUs); results are
	// identical for every worker count.
	Workers int
	// Progress, if non-nil, receives (completed cells, total cells).
	Progress func(done, total int)
	// Stats, if non-nil, collects one wall-clock/alloc row per completed
	// cell (see Runner.Stats). Side channel only: never part of the
	// table's rows or any golden-compared output.
	Stats *obs.RuntimeStats
}

// DefaultFaultsConfig returns the standing grid: one small clustered
// family under every fault class the transport can inject.
func DefaultFaultsConfig() FaultsConfig {
	return FaultsConfig{
		M:             60,
		Clusters:      4,
		Dist:          delaylb.LoadZipf,
		AvgLoad:       100,
		Rounds:        300,
		Participation: 0.5,
		FWIters:       600,
		FWTol:         1e-6,
		Repeats:       3,
		Seed:          1,
	}
}

// faultScenario is one named column of the table; the plan's Seed field
// is filled per cell.
type faultScenario struct {
	name string
	plan descent.FaultPlan
}

// faultScenarios is the fixed scenario order — part of the golden
// contract, so append rather than reorder.
func faultScenarios() []faultScenario {
	return []faultScenario{
		{"lossless", descent.FaultPlan{}},
		{"drop5", descent.FaultPlan{Drop: 0.05}},
		{"dup5", descent.FaultPlan{Duplicate: 0.05}},
		{"reorder10", descent.FaultPlan{Reorder: 0.1}},
		{"delay25", descent.FaultPlan{Delay: 0.25, DelayPhases: 2}},
		{"byzantine", descent.FaultPlan{Corrupt: 0.02, FalsePrice: 0.05}},
		{"crash", descent.FaultPlan{CrashEvery: 25, MaxCrashes: 1}},
		{"storm", descent.FaultPlan{Drop: 0.05, Duplicate: 0.05, Reorder: 0.05, Delay: 0.05, DelayPhases: 1, CrashEvery: 40, MaxCrashes: 1}},
	}
}

// FaultsRow is one aggregated row of the fault-tolerance table.
type FaultsRow struct {
	// Fault names the scenario (one fault class, or "storm" for all).
	Fault string `json:"fault"`
	// Gap summarizes the plane's signed final relative gap against the
	// pre-fault centralized oracle.
	Gap stats.Summary `json:"gap"`
	// Rounds summarizes gradient rounds to the 2% band (censored at the
	// budget when never reached).
	Rounds stats.Summary `json:"rounds"`
	// LostMass / RecoveredMass summarize the crash drill's accounting:
	// load that left with the dead servers vs. surviving mass the
	// failover folded home. All-zero for crash-free scenarios.
	LostMass      stats.Summary `json:"lost_mass"`
	RecoveredMass stats.Summary `json:"recovered_mass"`
}

type faultCell struct {
	scenario int
	rep      int
}

// FaultsTable runs the grid and aggregates per fault scenario.
func FaultsTable(cfg FaultsConfig) []FaultsRow {
	rows, _ := FaultsTableContext(context.Background(), cfg)
	return rows
}

// FaultsTableContext is FaultsTable with cancellation: on ctx
// cancellation it aggregates the completed cells and returns ctx.Err().
func FaultsTableContext(ctx context.Context, cfg FaultsConfig) ([]FaultsRow, error) {
	scenarios := faultScenarios()
	var cells []faultCell
	for s := range scenarios {
		for rep := 0; rep < cfg.Repeats; rep++ {
			cells = append(cells, faultCell{s, rep})
		}
	}
	type sample struct {
		scenario                     int
		gap, rounds, lost, recovered float64
	}
	run := Runner{Workers: cfg.Workers, Seed: cfg.Seed, Progress: cfg.Progress, Stats: cfg.Stats, StatsLabel: "faults"}
	results, done, err := RunCells(ctx, run, cells,
		func(ctx context.Context, i int, c faultCell, rng *rand.Rand) (sample, error) {
			s, cerr := cfg.runCell(ctx, scenarios[c.scenario], rng)
			if cerr != nil {
				return sample{}, cerr
			}
			return sample{scenario: c.scenario, gap: s[0], rounds: s[1], lost: s[2], recovered: s[3]}, nil
		})
	rows := make([]FaultsRow, 0, len(scenarios))
	for sidx, sc := range scenarios {
		var gaps, rounds, lost, recovered []float64
		for i, s := range results {
			if done[i] && s.scenario == sidx {
				gaps = append(gaps, s.gap)
				rounds = append(rounds, s.rounds)
				lost = append(lost, s.lost)
				recovered = append(recovered, s.recovered)
			}
		}
		if len(gaps) == 0 {
			continue
		}
		rows = append(rows, FaultsRow{
			Fault:         sc.name,
			Gap:           stats.Summarize(gaps),
			Rounds:        stats.Summarize(rounds),
			LostMass:      stats.Summarize(lost),
			RecoveredMass: stats.Summarize(recovered),
		})
	}
	return rows, err
}

// runCell measures one instance under one fault plan:
// [gap, rounds-to-band, lost mass, recovered mass]. The RNG draw order —
// scenario seed, plan seed, plane seed — is part of the determinism
// contract.
func (cfg FaultsConfig) runCell(ctx context.Context, sc faultScenario, rng *rand.Rand) ([4]float64, error) {
	var out [4]float64
	scSeed, planSeed, planeSeed := rng.Int63(), rng.Int63(), rng.Int63()
	in, err := delaylb.NewScenario(cfg.M).
		WithClusters(cfg.Clusters).
		WithLoads(cfg.Dist, cfg.AvgLoad).
		WithSeed(scSeed).
		Instance()
	if err != nil {
		return out, err
	}
	fw := qp.SolveFrankWolfeSparse(in, qp.Options{MaxIters: cfg.FWIters, Tol: cfg.FWTol, Ctx: ctx})
	if err := ctx.Err(); err != nil {
		return out, err
	}
	plan := sc.plan
	plan.Seed = planSeed
	p, err := descent.NewPlane(in, descent.Config{
		Seed:          planeSeed,
		Shards:        cfg.Clusters,
		Target:        fw.Cost,
		Participation: cfg.Participation,
		Faults:        &plan,
	})
	if err != nil {
		return out, err
	}
	rep, err := p.Run(cfg.Rounds)
	if err != nil {
		return out, err
	}
	out[0] = rep.RelGap
	out[1] = float64(rep.RoundsToBand)
	if rep.RoundsToBand < 0 {
		out[1] = float64(cfg.Rounds) // censored at the budget
	}
	if rep.Faults != nil {
		out[2] = rep.Faults.LostMass
		out[3] = rep.Faults.RecoveredMass
	}
	return out, ctx.Err()
}
