package sweep

import (
	"math/rand"
	"sort"

	"delaylb/internal/core"
	"delaylb/internal/game"
	"delaylb/internal/model"
	"delaylb/internal/stats"
	"delaylb/internal/workload"
)

// ConvergenceConfig drives Tables I and II: how many iterations the
// distributed algorithm needs to reach a relative error target.
type ConvergenceConfig struct {
	// Sizes are the network sizes; the paper uses 20,30,50,100,200,300.
	Sizes []int
	// Dists are the load distributions (uniform, exp, peak).
	Dists []workload.Kind
	// AvgLoads are the average loads for uniform/exp (paper: 10, 20,
	// 50, 200, 1000); ignored for peak.
	AvgLoads []float64
	// PeakTotal is the single-server load of the peak distribution
	// (paper: 100 000).
	PeakTotal float64
	// Networks lists the network families to pool (the paper found no
	// influence and pools them too).
	Networks []NetworkKind
	// Tol is the relative-error target: 0.02 for Table I, 0.001 for
	// Table II.
	Tol float64
	// Repeats is the number of seeds per configuration.
	Repeats int
	// Seed is the base RNG seed.
	Seed int64
	// MaxIters caps a single run (safety).
	MaxIters int
	// Strategy overrides partner selection; default exact (the paper's
	// Algorithm 2). Hybrid is recommended above m ≈ 200 for speed.
	Strategy core.Strategy
	// RemoveCyclesEvery mirrors §VI-B's ablation (0 = never).
	RemoveCyclesEvery int
}

// DefaultTable1Config returns a laptop-scale version of the paper's
// Table I sweep (full scale via cmd/tables -full).
func DefaultTable1Config() ConvergenceConfig {
	return ConvergenceConfig{
		Sizes:     []int{20, 30, 50, 100},
		Dists:     []workload.Kind{workload.KindUniform, workload.KindExponential, workload.KindPeak},
		AvgLoads:  []float64{10, 50, 200},
		PeakTotal: 100000,
		Networks:  []NetworkKind{NetHomogeneous, NetPlanetLab},
		Tol:       0.02,
		Repeats:   3,
		Seed:      1,
		MaxIters:  200,
	}
}

// DefaultTable2Config is Table I at the 0.1% precision of Table II.
func DefaultTable2Config() ConvergenceConfig {
	cfg := DefaultTable1Config()
	cfg.Tol = 0.001
	return cfg
}

// ConvergenceRow is one aggregated row of Table I/II.
type ConvergenceRow struct {
	Group   string // "m<=50", "m=100", …
	Dist    workload.Kind
	Summary stats.Summary // over iteration counts
}

// ConvergenceTable measures, for every configuration, the number of
// iterations the distributed algorithm needs so that ΣC_i is within
// cfg.Tol of the optimum (approximated, as in the paper, by running the
// algorithm to pairwise stability), then aggregates rows grouped the way
// the paper prints them.
func ConvergenceTable(cfg ConvergenceConfig) []ConvergenceRow {
	samples := map[[2]string][]float64{}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, m := range cfg.Sizes {
		for _, dist := range cfg.Dists {
			avgs := cfg.AvgLoads
			if dist == workload.KindPeak {
				avgs = []float64{cfg.PeakTotal}
			}
			for _, avg := range avgs {
				for _, net := range cfg.Networks {
					for rep := 0; rep < cfg.Repeats; rep++ {
						in := BuildInstance(m, net, SpeedUniform, dist, avg, rng)
						iters := itersToTarget(in, cfg, rng.Int63())
						key := [2]string{SizeGroup(m), string(dist)}
						samples[key] = append(samples[key], float64(iters))
					}
				}
			}
		}
	}
	return collectRows(samples)
}

// itersToTarget runs the reference optimum and then counts iterations
// until the target band is reached.
func itersToTarget(in *model.Instance, cfg ConvergenceConfig, seed int64) int {
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 200
	}
	refAlloc, _ := core.Run(in, core.Config{
		Strategy:          cfg.Strategy,
		MaxIters:          maxIters * 5,
		Rng:               rand.New(rand.NewSource(seed)),
		RemoveCyclesEvery: cfg.RemoveCyclesEvery,
	})
	ref := model.TotalCost(in, refAlloc)
	_, tr := core.Run(in, core.Config{
		Strategy:          cfg.Strategy,
		MaxIters:          maxIters,
		Reference:         ref,
		TargetRel:         cfg.Tol,
		Rng:               rand.New(rand.NewSource(seed + 7)),
		RemoveCyclesEvery: cfg.RemoveCyclesEvery,
	})
	return tr.Iters
}

func collectRows(samples map[[2]string][]float64) []ConvergenceRow {
	keys := make([][2]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	rows := make([]ConvergenceRow, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, ConvergenceRow{
			Group:   k[0],
			Dist:    workload.Kind(k[1]),
			Summary: stats.Summarize(samples[k]),
		})
	}
	return rows
}

// SelfishnessConfig drives Table III: the experimental cost of
// selfishness.
type SelfishnessConfig struct {
	Sizes      []int
	SpeedKinds []SpeedKind
	// LavBuckets maps the paper's row labels to the average loads pooled
	// into them.
	LavBuckets []LavBucket
	Networks   []NetworkKind
	Repeats    int
	Seed       int64
}

// LavBucket is one load row of Table III.
type LavBucket struct {
	Label string
	Loads []float64
}

// DefaultTable3Config returns a laptop-scale version of Table III.
func DefaultTable3Config() SelfishnessConfig {
	return SelfishnessConfig{
		Sizes:      []int{20, 30, 50},
		SpeedKinds: []SpeedKind{SpeedConst, SpeedUniform},
		LavBuckets: []LavBucket{
			{Label: "lav<=30", Loads: []float64{10, 20}},
			{Label: "lav=50", Loads: []float64{50}},
			{Label: "lav>=200", Loads: []float64{200, 1000}},
		},
		Networks: []NetworkKind{NetHomogeneous, NetPlanetLab},
		Repeats:  3,
		Seed:     1,
	}
}

// SelfishnessRow is one aggregated row of Table III: ratios of total
// processing times, Nash / optimum.
type SelfishnessRow struct {
	SpeedKind SpeedKind
	LavLabel  string
	Network   NetworkKind
	Summary   stats.Summary // over PoA ratios
}

// SelfishnessTable approximates the Nash equilibrium by best-response
// dynamics with the paper's 1% termination rule, computes the optimum
// with MinE, and aggregates the ratio per (speed kind, lav bucket,
// network) — the exact grouping of Table III.
func SelfishnessTable(cfg SelfishnessConfig) []SelfishnessRow {
	rng := rand.New(rand.NewSource(cfg.Seed))
	type key struct {
		sk  SpeedKind
		lav string
		net NetworkKind
	}
	samples := map[key][]float64{}
	for _, sk := range cfg.SpeedKinds {
		for _, bucket := range cfg.LavBuckets {
			for _, net := range cfg.Networks {
				for _, m := range cfg.Sizes {
					for _, lav := range bucket.Loads {
						for rep := 0; rep < cfg.Repeats; rep++ {
							// Table III pools uniform and exponential loads.
							dist := workload.KindUniform
							if rep%2 == 1 {
								dist = workload.KindExponential
							}
							in := BuildInstance(m, net, sk, dist, lav, rng)
							if in.TotalLoad() == 0 {
								continue
							}
							res := game.MeasurePoA(in, game.Config{}, rand.New(rand.NewSource(rng.Int63())))
							k := key{sk, bucket.Label, net}
							samples[k] = append(samples[k], res.Ratio)
						}
					}
				}
			}
		}
	}
	keys := make([]key, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		if ka.sk != kb.sk {
			return ka.sk < kb.sk
		}
		if ka.lav != kb.lav {
			return ka.lav < kb.lav
		}
		return ka.net < kb.net
	})
	rows := make([]SelfishnessRow, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, SelfishnessRow{
			SpeedKind: k.sk,
			LavLabel:  k.lav,
			Network:   k.net,
			Summary:   stats.Summarize(samples[k]),
		})
	}
	return rows
}
