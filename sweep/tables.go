package sweep

import (
	"context"
	"math/rand"
	"sort"

	"delaylb"
	"delaylb/internal/core"
	"delaylb/internal/game"
	"delaylb/internal/model"
	"delaylb/internal/stats"
	"delaylb/obs"
)

// ConvergenceConfig drives Tables I and II: how many iterations the
// distributed algorithm needs to reach a relative error target.
type ConvergenceConfig struct {
	// Sizes are the network sizes; the paper uses 20,30,50,100,200,300.
	Sizes []int
	// Dists are the load distributions (uniform, exp, peak).
	Dists []delaylb.LoadKind
	// AvgLoads are the average loads for uniform/exp (paper: 10, 20,
	// 50, 200, 1000); ignored for peak.
	AvgLoads []float64
	// PeakTotal is the single-server load of the peak distribution
	// (paper: 100 000).
	PeakTotal float64
	// Networks lists the network families to pool (the paper found no
	// influence and pools them too).
	Networks []delaylb.NetworkKind
	// Tol is the relative-error target: 0.02 for Table I, 0.001 for
	// Table II.
	Tol float64
	// Repeats is the number of seeds per configuration.
	Repeats int
	// Seed is the base RNG seed; cell i of the grid derives its private
	// stream from CellSeed(Seed, i).
	Seed int64
	// MaxIters caps a single run (safety).
	MaxIters int
	// Strategy overrides partner selection; default exact (the paper's
	// Algorithm 2). Hybrid is recommended above m ≈ 200 for speed.
	Strategy core.Strategy
	// RemoveCyclesEvery mirrors §VI-B's ablation (0 = never).
	RemoveCyclesEvery int
	// Workers bounds the worker pool (<= 0: all CPUs); results are
	// identical for every worker count.
	Workers int
	// Progress, if non-nil, receives (completed cells, total cells).
	Progress func(done, total int)
	// Stats, if non-nil, collects one wall-clock/alloc row per completed
	// cell (see Runner.Stats). Side channel only: never part of the
	// table's rows or any golden-compared output.
	Stats *obs.RuntimeStats
}

// DefaultTable1Config returns a laptop-scale version of the paper's
// Table I sweep (full scale via cmd/tables -full).
func DefaultTable1Config() ConvergenceConfig {
	return ConvergenceConfig{
		Sizes:     []int{20, 30, 50, 100},
		Dists:     []delaylb.LoadKind{delaylb.LoadUniform, delaylb.LoadExponential, delaylb.LoadPeak},
		AvgLoads:  []float64{10, 50, 200},
		PeakTotal: 100000,
		Networks:  []delaylb.NetworkKind{delaylb.NetHomogeneous, delaylb.NetPlanetLab},
		Tol:       0.02,
		Repeats:   3,
		Seed:      1,
		MaxIters:  200,
	}
}

// DefaultTable2Config is Table I at the 0.1% precision of Table II.
func DefaultTable2Config() ConvergenceConfig {
	cfg := DefaultTable1Config()
	cfg.Tol = 0.001
	return cfg
}

// ConvergenceRow is one aggregated row of Table I/II.
type ConvergenceRow struct {
	Group   string // "m<=50", "m=100", …
	Dist    delaylb.LoadKind
	Summary stats.Summary // over iteration counts
}

// convergenceCell is one point of the Table I/II experiment grid.
type convergenceCell struct {
	m    int
	dist delaylb.LoadKind
	avg  float64
	net  delaylb.NetworkKind
	rep  int
}

// cells enumerates the grid in a fixed order; the enumeration order is
// part of the determinism contract (it indexes CellSeed).
func (cfg ConvergenceConfig) cells() []convergenceCell {
	var out []convergenceCell
	for _, m := range cfg.Sizes {
		for _, dist := range cfg.Dists {
			avgs := cfg.AvgLoads
			if dist == delaylb.LoadPeak {
				avgs = []float64{cfg.PeakTotal}
			}
			for _, avg := range avgs {
				for _, net := range cfg.Networks {
					for rep := 0; rep < cfg.Repeats; rep++ {
						out = append(out, convergenceCell{m, dist, avg, net, rep})
					}
				}
			}
		}
	}
	return out
}

// ConvergenceTable measures, for every configuration, the number of
// iterations the distributed algorithm needs so that ΣC_i is within
// cfg.Tol of the optimum (approximated, as in the paper, by running the
// algorithm to pairwise stability), then aggregates rows grouped the way
// the paper prints them. Cells run concurrently on cfg.Workers workers.
func ConvergenceTable(cfg ConvergenceConfig) []ConvergenceRow {
	rows, _ := ConvergenceTableContext(context.Background(), cfg)
	return rows
}

// ConvergenceTableContext is ConvergenceTable with cancellation: on
// ctx cancellation it returns the rows aggregated from the cells that
// completed, together with ctx.Err().
func ConvergenceTableContext(ctx context.Context, cfg ConvergenceConfig) ([]ConvergenceRow, error) {
	type sample struct {
		key   [2]string
		iters float64
	}
	cells := cfg.cells()
	run := Runner{Workers: cfg.Workers, Seed: cfg.Seed, Progress: cfg.Progress, Stats: cfg.Stats, StatsLabel: "convergence"}
	results, done, err := RunCells(ctx, run, cells,
		func(ctx context.Context, i int, c convergenceCell, rng *rand.Rand) (sample, error) {
			in, berr := buildCell(c.m, c.net, delaylb.SpeedUniform, c.dist, c.avg, rng.Int63())
			if berr != nil {
				return sample{}, berr
			}
			iters, terr := itersToTarget(ctx, in, cfg, rng.Int63())
			if terr != nil {
				return sample{}, terr
			}
			return sample{key: [2]string{SizeGroup(c.m), string(c.dist)}, iters: float64(iters)}, nil
		})
	samples := map[[2]string][]float64{}
	for i, s := range results {
		if done[i] {
			samples[s.key] = append(samples[s.key], s.iters)
		}
	}
	return collectRows(samples), err
}

// itersToTarget runs the reference optimum and then counts iterations
// until the target band is reached. A context cancellation mid-run is
// reported as an error so the truncated measurement never pollutes the
// aggregates.
func itersToTarget(ctx context.Context, in *model.Instance, cfg ConvergenceConfig, seed int64) (int, error) {
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 200
	}
	refAlloc, _ := core.Run(in, core.Config{
		Strategy:          cfg.Strategy,
		MaxIters:          maxIters * 5,
		Rng:               rand.New(rand.NewSource(seed)),
		RemoveCyclesEvery: cfg.RemoveCyclesEvery,
		Ctx:               ctx,
	})
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	ref := model.TotalCost(in, refAlloc)
	_, tr := core.Run(in, core.Config{
		Strategy:          cfg.Strategy,
		MaxIters:          maxIters,
		Reference:         ref,
		TargetRel:         cfg.Tol,
		Rng:               rand.New(rand.NewSource(seed + 7)),
		RemoveCyclesEvery: cfg.RemoveCyclesEvery,
		Ctx:               ctx,
	})
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return tr.Iters, nil
}

func collectRows(samples map[[2]string][]float64) []ConvergenceRow {
	keys := make([][2]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	rows := make([]ConvergenceRow, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, ConvergenceRow{
			Group:   k[0],
			Dist:    delaylb.LoadKind(k[1]),
			Summary: stats.Summarize(samples[k]),
		})
	}
	return rows
}

// SelfishnessConfig drives Table III: the experimental cost of
// selfishness.
type SelfishnessConfig struct {
	Sizes      []int
	SpeedKinds []delaylb.SpeedKind
	// LavBuckets maps the paper's row labels to the average loads pooled
	// into them.
	LavBuckets []LavBucket
	Networks   []delaylb.NetworkKind
	Repeats    int
	Seed       int64
	// Workers bounds the worker pool (<= 0: all CPUs).
	Workers int
	// Progress, if non-nil, receives (completed cells, total cells).
	Progress func(done, total int)
	// Stats, if non-nil, collects one wall-clock/alloc row per completed
	// cell (see Runner.Stats). Side channel only: never part of the
	// table's rows or any golden-compared output.
	Stats *obs.RuntimeStats
}

// LavBucket is one load row of Table III.
type LavBucket struct {
	Label string
	Loads []float64
}

// DefaultTable3Config returns a laptop-scale version of Table III.
func DefaultTable3Config() SelfishnessConfig {
	return SelfishnessConfig{
		Sizes:      []int{20, 30, 50},
		SpeedKinds: []delaylb.SpeedKind{delaylb.SpeedConst, delaylb.SpeedUniform},
		LavBuckets: []LavBucket{
			{Label: "lav<=30", Loads: []float64{10, 20}},
			{Label: "lav=50", Loads: []float64{50}},
			{Label: "lav>=200", Loads: []float64{200, 1000}},
		},
		Networks: []delaylb.NetworkKind{delaylb.NetHomogeneous, delaylb.NetPlanetLab},
		Repeats:  3,
		Seed:     1,
	}
}

// SelfishnessRow is one aggregated row of Table III: ratios of total
// processing times, Nash / optimum.
type SelfishnessRow struct {
	Speeds   delaylb.SpeedKind
	LavLabel string
	Network  delaylb.NetworkKind
	Summary  stats.Summary // over PoA ratios
}

// selfishnessCell is one point of the Table III grid.
type selfishnessCell struct {
	sk   delaylb.SpeedKind
	lav  string
	net  delaylb.NetworkKind
	m    int
	load float64
	rep  int
}

func (cfg SelfishnessConfig) cells() []selfishnessCell {
	var out []selfishnessCell
	for _, sk := range cfg.SpeedKinds {
		for _, bucket := range cfg.LavBuckets {
			for _, net := range cfg.Networks {
				for _, m := range cfg.Sizes {
					for _, load := range bucket.Loads {
						for rep := 0; rep < cfg.Repeats; rep++ {
							out = append(out, selfishnessCell{sk, bucket.Label, net, m, load, rep})
						}
					}
				}
			}
		}
	}
	return out
}

// SelfishnessTable approximates the Nash equilibrium by best-response
// dynamics with the paper's 1% termination rule, computes the optimum
// with MinE, and aggregates the ratio per (speed kind, lav bucket,
// network) — the exact grouping of Table III. Cells run concurrently.
func SelfishnessTable(cfg SelfishnessConfig) []SelfishnessRow {
	rows, _ := SelfishnessTableContext(context.Background(), cfg)
	return rows
}

// SelfishnessTableContext is SelfishnessTable with cancellation; on
// ctx cancellation it aggregates the completed cells and returns
// ctx.Err().
func SelfishnessTableContext(ctx context.Context, cfg SelfishnessConfig) ([]SelfishnessRow, error) {
	type key struct {
		sk  delaylb.SpeedKind
		lav string
		net delaylb.NetworkKind
	}
	type sample struct {
		key   key
		ratio float64
		skip  bool
	}
	cells := cfg.cells()
	run := Runner{Workers: cfg.Workers, Seed: cfg.Seed, Progress: cfg.Progress, Stats: cfg.Stats, StatsLabel: "selfishness"}
	results, done, err := RunCells(ctx, run, cells,
		func(ctx context.Context, i int, c selfishnessCell, rng *rand.Rand) (sample, error) {
			// Table III pools uniform and exponential loads.
			dist := delaylb.LoadUniform
			if c.rep%2 == 1 {
				dist = delaylb.LoadExponential
			}
			in, berr := buildCell(c.m, c.net, c.sk, dist, c.load, rng.Int63())
			if berr != nil {
				return sample{}, berr
			}
			if in.TotalLoad() == 0 {
				return sample{skip: true}, nil
			}
			res := game.MeasurePoA(in, game.Config{Ctx: ctx}, rand.New(rand.NewSource(rng.Int63())))
			if cerr := ctx.Err(); cerr != nil {
				return sample{}, cerr
			}
			return sample{key: key{c.sk, c.lav, c.net}, ratio: res.Ratio}, nil
		})
	samples := map[key][]float64{}
	for i, s := range results {
		if done[i] && !s.skip {
			samples[s.key] = append(samples[s.key], s.ratio)
		}
	}
	keys := make([]key, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		if ka.sk != kb.sk {
			return ka.sk < kb.sk
		}
		if ka.lav != kb.lav {
			return ka.lav < kb.lav
		}
		return ka.net < kb.net
	})
	rows := make([]SelfishnessRow, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, SelfishnessRow{
			Speeds:   k.sk,
			LavLabel: k.lav,
			Network:  k.net,
			Summary:  stats.Summarize(samples[k]),
		})
	}
	return rows, err
}
