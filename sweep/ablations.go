package sweep

import (
	"math/rand"

	"delaylb"
	"delaylb/internal/coords"
	"delaylb/internal/core"
	"delaylb/internal/dynamic"
	"delaylb/internal/model"
)

// LatencyEstimationResult quantifies what the paper's "pairwise
// latencies are known" assumption costs when the latencies instead come
// from a Vivaldi coordinate embedding (the monitoring substrate the
// paper cites as [9]/[32]).
type LatencyEstimationResult struct {
	// MedianRelErr is the embedding's median relative latency error.
	MedianRelErr float64
	// TrueOptCost is ΣC_i of the optimum computed with true latencies.
	TrueOptCost float64
	// EstPlanCost is the true ΣC_i of the plan computed with estimated
	// latencies — what the system actually pays when optimizing over
	// the embedding.
	EstPlanCost float64
	// Penalty = EstPlanCost/TrueOptCost − 1.
	Penalty float64
}

// LatencyEstimationAblation trains Vivaldi on the true matrix, runs MinE
// over the estimated matrix, and evaluates the resulting allocation
// under the true latencies.
func LatencyEstimationAblation(m int, samplesPerNode int, seed int64) LatencyEstimationResult {
	in, err := buildCell(m, delaylb.NetPlanetLab, delaylb.SpeedUniform, delaylb.LoadExponential, 100, seed)
	if err != nil {
		panic(err) // the fixed §VI-A families always validate
	}

	space := coords.NewSpace(m, 3, rand.New(rand.NewSource(seed+1)))
	trueLat := in.Latency.Dense()
	space.Train(trueLat, samplesPerNode)
	est := space.EstimateMatrix()

	estIn := &model.Instance{Speed: in.Speed, Load: in.Load, Latency: model.NewDense(est)}
	planAlloc, _ := core.Run(estIn, core.Config{Rng: rand.New(rand.NewSource(seed + 2))})

	trueOpt := core.ReferenceOptimum(in, rand.New(rand.NewSource(seed+3)))
	planCost := model.TotalCost(in, planAlloc) // evaluated under TRUE latencies

	res := LatencyEstimationResult{
		MedianRelErr: space.MedianRelativeError(trueLat),
		TrueOptCost:  trueOpt,
		EstPlanCost:  planCost,
	}
	if trueOpt > 0 {
		res.Penalty = planCost/trueOpt - 1
	}
	return res
}

// DynamicTrackingAblation runs the dynamic-workload tracking experiment
// (see internal/dynamic) on a standard evaluation instance.
func DynamicTrackingAblation(m, epochs int, churn float64, seed int64) ([]dynamic.EpochStats, dynamic.Summary) {
	in, err := buildCell(m, delaylb.NetPlanetLab, delaylb.SpeedUniform, delaylb.LoadExponential, 100, seed)
	if err != nil {
		panic(err) // the fixed §VI-A families always validate
	}
	stats := dynamic.Track(in, dynamic.Config{
		Epochs:    epochs,
		Churn:     churn,
		SpikeProb: 0.05,
		Seed:      seed + 1,
	})
	return stats, dynamic.Summarize(stats)
}
