package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

func smallBenchConfig() BenchConfig {
	cfg := DefaultBenchConfig()
	cfg.Sizes = []int{30, 60}
	cfg.DenseMax = 60
	cfg.MineMax = 60
	cfg.FWIters = 50
	cfg.MineIters = 4
	cfg.DescentSizes = []int{30}
	cfg.DescentRounds = 80
	cfg.FWVariantSizes = []int{30, 60}
	cfg.MineSparseSizes = []int{30, 60}
	cfg.LatencyUpdateSizes = []int{30}
	return cfg
}

func TestRunBenchDeterministicAggregates(t *testing.T) {
	cfg := smallBenchConfig()
	start := time.Now()
	a, err := RunBench(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBench(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("two small bench runs in %v", time.Since(start).Round(time.Millisecond))

	wantCells := 2*6 + 1 + 2*2 + 2 + 1 // four solvers + both churn cells per size, one descent cell, two FW-variant cells per size, two mine-sparse-state cells, one latency-update cell
	if len(a.Entries) != wantCells || len(b.Entries) != wantCells {
		t.Fatalf("entry counts %d/%d, want %d", len(a.Entries), len(b.Entries), wantCells)
	}
	for i := range a.Entries {
		x, y := a.Entries[i], b.Entries[i]
		if x.M != y.M || x.Solver != y.Solver || x.Scenario != y.Scenario {
			t.Fatalf("cell %d identity differs: %+v vs %+v", i, x, y)
		}
		// The deterministic fields must agree byte for byte; timings and
		// allocations are machine facts and deliberately unchecked.
		if x.Cost != y.Cost || x.Gap != y.Gap || x.Iters != y.Iters || x.NNZ != y.NNZ || x.Converged != y.Converged {
			t.Fatalf("cell %d (m=%d %s) not deterministic: %+v vs %+v", i, x.M, x.Solver, x, y)
		}
		// Descent cells add two more deterministic columns (bytes and
		// rounds are seed facts; only RoundNS is a machine fact), the
		// FW-variant cells one (iterations to the 2% band).
		if x.RoundsToBand != y.RoundsToBand || x.BytesPerRound != y.BytesPerRound || x.ItersToBand != y.ItersToBand {
			t.Fatalf("cell %d (m=%d %s) band columns not deterministic: %+v vs %+v", i, x.M, x.Solver, x, y)
		}
		if x.Cost <= 0 || x.Iters <= 0 {
			t.Fatalf("cell %d (m=%d %s) has degenerate aggregates: %+v", i, x.M, x.Solver, x)
		}
	}
}

// TestRunBenchSparseDenseAgree pins the cross-representation guarantee
// at harness level: the sparse and dense Frank–Wolfe cells of the same
// size solve the same instance to the same cost, bit for bit.
func TestRunBenchSparseDenseAgree(t *testing.T) {
	cfg := smallBenchConfig()
	rep, err := RunBench(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[[2]string]BenchEntry{}
	for _, e := range rep.Entries {
		byKey[[2]string{e.Scenario, e.Solver}] = e
	}
	for _, e := range rep.Entries {
		if e.Solver != "frankwolfe-sparse" {
			continue
		}
		d, ok := byKey[[2]string{e.Scenario, "frankwolfe-dense"}]
		if !ok {
			continue
		}
		if e.Cost != d.Cost || e.Gap != d.Gap || e.Iters != d.Iters {
			t.Fatalf("m=%d: sparse (%g, %g, %d) != dense (%g, %g, %d)",
				e.M, e.Cost, e.Gap, e.Iters, d.Cost, d.Gap, d.Iters)
		}
		if e.NNZ == 0 {
			t.Fatalf("m=%d: sparse cell recorded no nnz", e.M)
		}
	}
}

func TestBenchReportJSON(t *testing.T) {
	cfg := smallBenchConfig()
	cfg.Sizes = []int{20}
	rep, err := RunBench(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(back.Entries) != len(rep.Entries) || back.Seed != rep.Seed {
		t.Fatal("JSON round-trip lost entries")
	}
	var table bytes.Buffer
	FprintBenchReport(&table, rep)
	if table.Len() == 0 {
		t.Fatal("FprintBenchReport wrote nothing")
	}
}

// TestAppendBenchPureAppend pins the contract cmd/tables -benchappend
// relies on: extending a report that predates the FW-variant,
// sparse-state and latency-update tiers runs only the missing cells and
// leaves every historical entry — including its machine-fact timings —
// byte-for-byte untouched.
func TestAppendBenchPureAppend(t *testing.T) {
	old := smallBenchConfig()
	old.FWVariantSizes = nil
	old.MineSparseSizes = nil
	old.LatencyUpdateSizes = nil
	rep, err := RunBench(context.Background(), old, nil)
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := json.Marshal(rep.Entries)
	if err != nil {
		t.Fatal(err)
	}
	before := len(rep.Entries)

	added, err := AppendBench(context.Background(), smallBenchConfig(), rep, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*2 + 2 + 1; added != want {
		t.Fatalf("AppendBench added %d cells, want %d", added, want)
	}
	got, err := json.Marshal(rep.Entries[:before])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frozen, got) {
		t.Fatal("AppendBench modified pre-existing entries")
	}
	proxyCost := map[int]float64{}
	for _, e := range rep.Entries[:before] {
		if e.Solver == "proxy-sparse" {
			proxyCost[e.M] = e.Cost
		}
	}
	for _, e := range rep.Entries[before:] {
		if e.Cost <= 0 || e.Iters <= 0 {
			t.Fatalf("appended cell m=%d %s has degenerate aggregates: %+v", e.M, e.Solver, e)
		}
		switch e.Solver {
		case "frankwolfe-away", "frankwolfe-pairwise":
			if e.NNZ <= 0 {
				t.Fatalf("appended cell m=%d %s recorded no nnz", e.M, e.Solver)
			}
			if e.ItersToBand <= 0 {
				t.Fatalf("appended cell m=%d %s never reached the 2%% band (iters_to_band %d)", e.M, e.Solver, e.ItersToBand)
			}
		case "mine-sparse-state":
			if e.NNZ <= 0 {
				t.Fatalf("appended cell m=%d %s recorded no nnz", e.M, e.Solver)
			}
			// Same solver configuration as proxy-sparse, dense allocation
			// swapped for the sparse row store: the costs must agree bit
			// for bit at sizes both tiers cover.
			if want, ok := proxyCost[e.M]; ok && e.Cost != want {
				t.Fatalf("m=%d: mine-sparse-state cost %v != proxy-sparse %v", e.M, e.Cost, want)
			}
		case "latency-structured-update":
			if e.ChurnEvents <= 0 || e.ChurnEventNS <= 0 {
				t.Fatalf("appended cell m=%d %s recorded no per-event cost: %+v", e.M, e.Solver, e)
			}
		default:
			t.Fatalf("appended unexpected cell %q", e.Solver)
		}
	}
	// A second append is a no-op: the grid is saturated.
	if added, err := AppendBench(context.Background(), smallBenchConfig(), rep, nil); err != nil || added != 0 {
		t.Fatalf("saturated AppendBench = (%d, %v), want (0, nil)", added, err)
	}
}

func TestRunBenchCancellation(t *testing.T) {
	cfg := smallBenchConfig()
	progressed := 0
	ctx, cancel := context.WithCancel(context.Background())
	rep, err := RunBench(ctx, cfg, func(done, total int) {
		progressed = done
		if done == 2 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("canceled bench run returned no error")
	}
	if progressed < 2 || len(rep.Entries) < 2 {
		t.Fatalf("expected at least the 2 pre-cancel entries, got %d", len(rep.Entries))
	}
	if len(rep.Entries) >= len(cfg.cells()) {
		t.Fatal("cancellation did not stop the grid")
	}
}
