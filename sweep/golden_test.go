package sweep

// Golden-table regression tests: reduced-scale versions of Tables I–IV
// and Figure 2 are pinned, for fixed seeds, as text tables under
// testdata/. Any change to the RNG derivation, the cell enumeration
// order, the aggregation, or the algorithms themselves shows up as a
// diff against these files — the parallel runner is provably drift-free
// because the same files must match at every worker count.
//
// Regenerate after an intentional change with:
//
//	go test ./sweep -run TestGolden -update
//
// Values are rendered with %.6g so the files are stable across
// architectures with slightly different libm rounding.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"delaylb"

	"delaylb/internal/stats"
)

var update = flag.Bool("update", false, "rewrite the golden files under sweep/testdata")

func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./sweep -run TestGolden -update` to create it)", err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from the pinned aggregate.\n--- want\n%s--- got\n%s(after an intentional change: go test ./sweep -run TestGolden -update)",
			name, want, got)
	}
}

func fmtSummary(s stats.Summary) string {
	return fmt.Sprintf("avg=%.6g max=%.6g min=%.6g std=%.6g n=%d", s.Avg, s.Max, s.Min, s.Std, s.N)
}

// goldenConvergenceConfig is the shared reduced grid of the Table I/II
// goldens: 24 cells, a few seconds of CPU.
func goldenConvergenceConfig(tol float64) ConvergenceConfig {
	return ConvergenceConfig{
		Sizes:     []int{20, 60},
		Dists:     []delaylb.LoadKind{delaylb.LoadUniform, delaylb.LoadExponential, delaylb.LoadPeak},
		AvgLoads:  []float64{50},
		PeakTotal: 100000,
		Networks:  []delaylb.NetworkKind{delaylb.NetHomogeneous, delaylb.NetPlanetLab},
		Tol:       tol,
		Repeats:   2,
		Seed:      1,
		MaxIters:  100,
	}
}

func renderConvergence(rows []ConvergenceRow) string {
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s %s %s\n", r.Group, r.Dist, fmtSummary(r.Summary))
	}
	return sb.String()
}

func TestGoldenTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep: skipped in -short mode")
	}
	rows := ConvergenceTable(goldenConvergenceConfig(0.02))
	goldenCompare(t, "table1.golden", renderConvergence(rows))
}

func TestGoldenTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep: skipped in -short mode")
	}
	rows := ConvergenceTable(goldenConvergenceConfig(0.001))
	goldenCompare(t, "table2.golden", renderConvergence(rows))
}

func TestGoldenTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep: skipped in -short mode")
	}
	rows := SelfishnessTable(SelfishnessConfig{
		Sizes:      []int{15, 25},
		SpeedKinds: []delaylb.SpeedKind{delaylb.SpeedConst, delaylb.SpeedUniform},
		LavBuckets: []LavBucket{
			{Label: "lav=50", Loads: []float64{50}},
			{Label: "lav>=200", Loads: []float64{200}},
		},
		Networks: []delaylb.NetworkKind{delaylb.NetHomogeneous, delaylb.NetPlanetLab},
		Repeats:  2,
		Seed:     1,
	})
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s %s %s %s\n",
			PaperSpeedLabel(r.Speeds), r.LavLabel, PaperNetLabel(r.Network), fmtSummary(r.Summary))
	}
	goldenCompare(t, "table3.golden", sb.String())
}

func TestGoldenTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep: skipped in -short mode")
	}
	cfg := DefaultTable4Config()
	cfg.Probes = 60 // reduced scale: keeps the golden run to ~a second
	res := Table4(cfg)
	var sb strings.Builder
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "tb=%.6g mu=%.6g sigma=%.6g\n", r.ThroughputKBps, r.Mu, r.Sigma)
	}
	fmt.Fprintf(&sb, "anova-accept=%.6g\n", res.ANOVAAcceptFrac)
	goldenCompare(t, "table4.golden", sb.String())
}

func TestGoldenFigure2(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep: skipped in -short mode")
	}
	series := Figure2(Figure2Config{
		Sizes:      []int{80, 160},
		PeakTotal:  100000,
		Iterations: 10,
		Seed:       1,
	})
	var sb strings.Builder
	for _, s := range series {
		fmt.Fprintf(&sb, "m=%d", s.M)
		for _, c := range s.Costs {
			fmt.Fprintf(&sb, " %.6g", c)
		}
		sb.WriteString("\n")
	}
	goldenCompare(t, "figure2.golden", sb.String())
}

// goldenDescentConfig is the reduced descent-vs-oracles grid: 8 cells,
// a few seconds of CPU.
func goldenDescentConfig() DescentTableConfig {
	cfg := DefaultDescentTableConfig()
	cfg.Sizes = []int{24, 48}
	cfg.Rounds = 300
	cfg.FWIters = 300
	cfg.MineIters = 8
	cfg.Repeats = 2
	cfg.Seed = 1
	return cfg
}

func renderDescent(rows []DescentRow) string {
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "m=%d %s gap[%s] rounds[%s] poa[%s]\n",
			r.M, r.Dist, fmtSummary(r.Gap), fmtSummary(r.Rounds), fmtSummary(r.PoA))
	}
	return sb.String()
}

// TestGoldenDescent pins the distributed plane against the frankwolfe
// and MinE oracles: cooperative gap and rounds-to-band, selfish PoA.
func TestGoldenDescent(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep: skipped in -short mode")
	}
	rows := DescentTable(goldenDescentConfig())
	goldenCompare(t, "descent.golden", renderDescent(rows))
}

// The descent golden must also be worker-count independent.
func TestGoldenDescentParallelMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep: skipped in -short mode")
	}
	if *update {
		t.Skip("golden files being rewritten")
	}
	cfg := goldenDescentConfig()
	cfg.Workers = 3
	rows := DescentTable(cfg)
	goldenCompare(t, "descent.golden", renderDescent(rows))
}

// goldenFaultsConfig is the reduced fault-tolerance grid: 8 scenarios
// × 2 seeds on one small clustered family.
func goldenFaultsConfig() FaultsConfig {
	cfg := DefaultFaultsConfig()
	cfg.M = 48
	cfg.FWIters = 300
	cfg.Repeats = 2
	cfg.Seed = 1
	return cfg
}

func renderFaults(rows []FaultsRow) string {
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "fault=%s gap[%s] rounds[%s] lost[%s] recovered[%s]\n",
			r.Fault, fmtSummary(r.Gap), fmtSummary(r.Rounds), fmtSummary(r.LostMass), fmtSummary(r.RecoveredMass))
	}
	return sb.String()
}

// TestGoldenFaults pins the WAN fault-tolerance table: the plane's gap
// and rounds-to-band under every injected fault class, plus the crash
// drill's lost-vs-recovered mass. A drift in the fault injector's
// draw order, the recovery protocol, or the failover path lands here
// as a diff.
func TestGoldenFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep: skipped in -short mode")
	}
	rows := FaultsTable(goldenFaultsConfig())
	goldenCompare(t, "faults.golden", renderFaults(rows))
}

// The faults golden must also be worker-count independent: fault
// schedules are pure functions of (plan seed, round, edge), so a
// parallel run must reproduce the serial rows byte-for-byte.
func TestGoldenFaultsParallelMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep: skipped in -short mode")
	}
	if *update {
		t.Skip("golden files being rewritten")
	}
	cfg := goldenFaultsConfig()
	cfg.Workers = 3
	rows := FaultsTable(cfg)
	goldenCompare(t, "faults.golden", renderFaults(rows))
}

func renderFWVariants(rows []FWVariantRow) string {
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "m=%d %s cost=%.6g gap=%.6g iters=%d conv=%v band=%d nnz=%d rate=%.6g\n",
			r.M, r.Variant, r.Cost, r.Gap, r.Iters, r.Converged, r.ItersToBand, r.NNZ, r.Rate)
	}
	return sb.String()
}

// TestGoldenFWVariants pins the Frank–Wolfe variant comparison — gaps,
// iterations to the 2% band, support sizes, gap decay rates — for the
// serial runner. Any drift in the active-set engine's iterates (a step
// rule, a tie-break, the incremental oracle) lands here as a diff.
func TestGoldenFWVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep: skipped in -short mode")
	}
	cfg := DefaultFWVariantConfig()
	cfg.Workers = 1
	goldenCompare(t, "fwvariants.golden", renderFWVariants(FWVariantTable(cfg)))
}

// The variant golden must also be worker-count independent.
func TestGoldenFWVariantsParallelMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep: skipped in -short mode")
	}
	if *update {
		t.Skip("golden files being rewritten")
	}
	cfg := DefaultFWVariantConfig()
	cfg.Workers = 3
	goldenCompare(t, "fwvariants.golden", renderFWVariants(FWVariantTable(cfg)))
}

// The golden files themselves must be worker-count independent: rerun
// Table I's golden grid at workers=3 and compare against the same file.
func TestGoldenTable1ParallelMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep: skipped in -short mode")
	}
	if *update {
		t.Skip("golden files being rewritten")
	}
	cfg := goldenConvergenceConfig(0.02)
	cfg.Workers = 3
	rows := ConvergenceTable(cfg)
	goldenCompare(t, "table1.golden", renderConvergence(rows))
}
