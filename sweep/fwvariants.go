package sweep

// The Frank–Wolfe variant comparison table: classic, away-step and
// pairwise runs on the same clustered zipf instances, reporting the
// convergence facts the variant tier claims — final duality gap,
// iterations to the 2% band, iterate support, and the geometric decay
// rate of the gap curve (bounded away from 1 for the active-set
// variants, drifting to 1 for classic). Like every table in this
// package the rows are a pure function of the seed, independent of the
// worker count; the golden test pins them at workers 1 and 3.

import (
	"context"
	"math/rand"

	"delaylb"
	"delaylb/internal/convtest"
	"delaylb/internal/qp"
	"delaylb/obs"
)

// FWVariantConfig drives the variant comparison grid.
type FWVariantConfig struct {
	// Sizes are the network sizes; every size runs all three variants on
	// the identical instance (the scenario seed derives from the size,
	// not the cell index).
	Sizes []int
	// Clusters, AvgLoad and Side shape the scenario exactly as the bench
	// grid does: zipf loads on a clustered metro network.
	Clusters int
	AvgLoad  float64
	Side     float64
	// Iters and Tol bound every run; Band is the optimality band of the
	// iterations-to-band column, relative to each run's own certified
	// lower bound (cost − gap).
	Iters int
	Tol   float64
	Band  float64
	// Seed is the base seed; size m draws its scenario from
	// CellSeed(Seed, m).
	Seed int64
	// Workers bounds the worker pool (<= 0: all CPUs); results are
	// identical for every worker count.
	Workers int
	// Progress, if non-nil, receives (completed cells, total cells).
	Progress func(done, total int)
	// Stats, if non-nil, collects one wall-clock/alloc row per completed
	// cell (see Runner.Stats). Side channel only: never part of the
	// table's rows or any golden-compared output.
	Stats *obs.RuntimeStats
}

// DefaultFWVariantConfig returns the reduced-scale standing grid: two
// sizes, a few seconds of CPU, tolerance tight enough that classic FW
// stalls while the active-set variants converge.
func DefaultFWVariantConfig() FWVariantConfig {
	return FWVariantConfig{
		Sizes:    []int{60, 150},
		Clusters: 5,
		AvgLoad:  100,
		Side:     100,
		Iters:    600,
		Tol:      1e-7,
		Band:     0.02,
		Seed:     1,
	}
}

// FWVariantRow is one (size, variant) cell of the comparison.
type FWVariantRow struct {
	M       int     `json:"m"`
	Variant string  `json:"variant"`
	Cost    float64 `json:"cost"`
	// Gap is the final duality gap; Cost − Gap certifies a lower bound.
	Gap float64 `json:"gap"`
	// Iters is the sweeps consumed; Converged whether the gap tolerance
	// was met inside the budget.
	Iters     int  `json:"iters"`
	Converged bool `json:"converged"`
	// ItersToBand is the first sweep within Band of the run's certified
	// lower bound (-1: never).
	ItersToBand int `json:"iters_to_band"`
	// NNZ is the final iterate's stored-nonzero count.
	NNZ int `json:"nnz"`
	// Rate is the geometric mean per-sweep contraction of the gap curve.
	Rate float64 `json:"rate"`
}

type fwVariantCell struct {
	m       int
	variant qp.Variant
}

var fwVariantOrder = []qp.Variant{qp.VariantClassic, qp.VariantAway, qp.VariantPairwise}

func (cfg FWVariantConfig) cells() []fwVariantCell {
	var out []fwVariantCell
	for _, m := range cfg.Sizes {
		for _, v := range fwVariantOrder {
			out = append(out, fwVariantCell{m, v})
		}
	}
	return out
}

// FWVariantTable runs the grid and returns one row per cell, in cell
// order.
func FWVariantTable(cfg FWVariantConfig) []FWVariantRow {
	rows, _ := FWVariantTableContext(context.Background(), cfg)
	return rows
}

// FWVariantTableContext is FWVariantTable with cancellation: on ctx
// cancellation it returns the completed rows and ctx.Err().
func FWVariantTableContext(ctx context.Context, cfg FWVariantConfig) ([]FWVariantRow, error) {
	cells := cfg.cells()
	run := Runner{Workers: cfg.Workers, Seed: cfg.Seed, Progress: cfg.Progress, Stats: cfg.Stats, StatsLabel: "fwvariants"}
	results, done, err := RunCells(ctx, run, cells,
		func(ctx context.Context, _ int, c fwVariantCell, _ *rand.Rand) (FWVariantRow, error) {
			return cfg.runCell(ctx, c)
		})
	rows := make([]FWVariantRow, 0, len(results))
	for i, r := range results {
		if done[i] {
			rows = append(rows, r)
		}
	}
	return rows, err
}

// runCell solves one (size, variant) cell. The solvers are
// deterministic, so the cell needs no randomness beyond the scenario
// seed — which derives from the size so that all three variants of one
// m referee the identical instance.
func (cfg FWVariantConfig) runCell(ctx context.Context, c fwVariantCell) (FWVariantRow, error) {
	sc := delaylb.NewScenario(c.m).
		WithClusters(cfg.Clusters).
		WithLatency(cfg.Side).
		WithLoads(delaylb.LoadZipf, cfg.AvgLoad).
		WithSeed(CellSeed(cfg.Seed, c.m))
	in, err := sc.Instance()
	if err != nil {
		return FWVariantRow{}, err
	}
	curve := convtest.Run(in, c.variant, qp.Options{MaxIters: cfg.Iters, Tol: cfg.Tol, Ctx: ctx})
	return FWVariantRow{
		M:           c.m,
		Variant:     c.variant.String(),
		Cost:        curve.Cost,
		Gap:         curve.Gap,
		Iters:       curve.Iters,
		Converged:   curve.Converged,
		ItersToBand: convtest.ItersToBand(curve.Costs, curve.Cost-curve.Gap, cfg.Band),
		NNZ:         curve.NNZ,
		Rate:        convtest.GeometricRate(curve.Gaps),
	}, ctx.Err()
}
