package delaylb

// End-to-end integration tests exercising the full pipeline a downstream
// user would run: generate an instance → cooperative optimization →
// selfish play → discrete rounding → replication → distributed runtime,
// with cross-checks between every stage.

import (
	"math"
	"testing"
)

func TestFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration: skipped in -short mode")
	}
	const m = 25
	sys, err := New(
		UniformSpeeds(m, 1, 5, 100),
		ZipfLoads(m, 150, 101),
		PlanetLabLatencies(m, 102),
	)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Cooperative optimum via three independent algorithms.
	mine, err := sys.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	fw, err := sys.Optimize(WithSolver("frankwolfe"), WithTolerance(1e-8), WithMaxIterations(200000))
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(fw.Cost-mine.Cost) / mine.Cost; rel > 1e-3 {
		t.Fatalf("solver disagreement: MinE %v vs FW %v", mine.Cost, fw.Cost)
	}

	// 2. Selfish play costs more, but not much more (Table III).
	nash, err := sys.NashEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	poa := nash.Cost / mine.Cost
	if poa < 1-1e-6 || poa > 1.2 {
		t.Fatalf("PoA = %v outside (1, 1.2]", poa)
	}

	// 3. Discrete rounding stays close to the fractional optimum.
	tasks := sys.GenerateTasks(4, 103)
	_, disc := sys.RoundTasks(mine, tasks)
	if rel := (disc.Cost - mine.Cost) / mine.Cost; rel > 0.05 {
		t.Fatalf("rounding cost %v (+%.2f%%)", disc.Cost, 100*rel)
	}

	// 4. Replication: dearer than unconstrained, feasible caps.
	repl, err := sys.OptimizeReplicated(2)
	if err != nil {
		t.Fatal(err)
	}
	if repl.Cost < mine.Cost*(1-1e-9) {
		t.Fatalf("replicated cost %v below unconstrained %v", repl.Cost, mine.Cost)
	}

	// 5. The message-passing runtime reaches the same optimum.
	dist, msgs := sys.SimulateDistributed(50)
	if msgs == 0 {
		t.Fatal("runtime exchanged no messages")
	}
	if rel := (dist.Cost - mine.Cost) / mine.Cost; rel > 0.05 {
		t.Fatalf("runtime stalled %.2f%% above optimum", 100*rel)
	}

	// 6. The ordering of the regimes: optimum ≤ runtime, optimum ≤ nash,
	// and every allocation carries the same total mass.
	var want float64
	for _, n := range ZipfLoads(m, 150, 101) {
		want += n
	}
	for name, res := range map[string]*Result{
		"mine": mine, "nash": nash, "discrete": disc, "replicated": repl, "runtime": dist,
	} {
		var got float64
		for _, l := range res.Loads {
			got += l
		}
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("%s: total mass %v, want %v", name, got, want)
		}
	}
}

func TestPipelineWithForbiddenLinks(t *testing.T) {
	if testing.Short() {
		t.Skip("integration: skipped in -short mode")
	}
	const m = 10
	lat := PlanetLabLatencies(m, 200)
	// Organization 0 trusts only servers 0–4.
	for j := 5; j < m; j++ {
		lat[0][j] = math.Inf(1)
	}
	sys, err := New(UniformSpeeds(m, 1, 5, 201), ExponentialLoads(m, 120, 202), lat)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := sys.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	for j := 5; j < m; j++ {
		if opt.Requests()[0][j] != 0 {
			t.Fatalf("optimizer placed %v on forbidden server %d", opt.Requests()[0][j], j)
		}
	}
	nash, err := sys.NashEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	for j := 5; j < m; j++ {
		if nash.Requests()[0][j] != 0 {
			t.Fatalf("nash placed %v on forbidden server %d", nash.Requests()[0][j], j)
		}
	}
}

// Determinism across the whole public surface: identical inputs and
// seeds must give byte-identical results.
func TestPipelineDeterminism(t *testing.T) {
	build := func() *Result {
		sys, err := New(
			UniformSpeeds(15, 1, 5, 300),
			ExponentialLoads(15, 90, 301),
			PlanetLabLatencies(15, 302),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Optimize(WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := build(), build()
	if a.Cost != b.Cost || a.Iterations != b.Iterations {
		t.Fatal("Optimize not deterministic under fixed seeds")
	}
	for i := range a.Requests() {
		for j := range a.Requests() {
			if a.Requests()[i][j] != b.Requests()[i][j] {
				t.Fatal("allocations differ under fixed seeds")
			}
		}
	}
}
